// Dictionary encoding: Term <-> TermId.
//
// Standard triple-store design (RDF-3X, HDT): every distinct term is interned
// once and triples hold 32-bit ids, which makes index entries 12 bytes and
// joins integer comparisons. Ids are dense, starting at 1 (0 is the
// null/wildcard id).
//
// Thread safety: fully synchronized (reader/writer lock). Interning is the
// one mutation the alignment pipeline performs on a KB during queries
// (EncodeTerm for translated constants), so parallel alignment requires the
// dictionary to take concurrent Intern/Lookup/Decode calls. Terms live in a
// deque, which never relocates elements on append — the references Decode()
// hands out stay valid across later interns.

#ifndef SOFYA_RDF_DICTIONARY_H_
#define SOFYA_RDF_DICTIONARY_H_

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "rdf/term.h"
#include "util/status.h"

namespace sofya {

/// Bidirectional Term <-> TermId map. Safe for concurrent use; ids are
/// assigned in interning order and never change or disappear.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable (KnowledgeBase is movable); the caller must not move a
  // dictionary that other threads are using.
  Dictionary(Dictionary&& other) noexcept {
    std::unique_lock<std::shared_mutex> lock(other.mu_);
    terms_ = std::move(other.terms_);
    index_ = std::move(other.index_);
  }
  Dictionary& operator=(Dictionary&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      terms_ = std::move(other.terms_);
      index_ = std::move(other.index_);
    }
    return *this;
  }

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Interning fast path for loaders replaying terms expected to be new
  /// (snapshot dictionary rebuild): one lock, one hash probe, and the term
  /// is moved rather than copied. Falls back to returning the existing id
  /// if the term was interned before — identical semantics to Intern().
  TermId InternNew(Term&& term);

  /// Convenience: interns an IRI term.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }

  /// Convenience: interns a plain literal term.
  TermId InternLiteral(std::string lexical) {
    return Intern(Term::Literal(std::move(lexical)));
  }

  /// Looks up the id of `term`; kNullTermId if never interned.
  TermId Lookup(const Term& term) const;

  /// Looks up the id of an IRI; kNullTermId if never interned.
  TermId LookupIri(const std::string& iri) const {
    return Lookup(Term::Iri(iri));
  }

  /// True iff `id` is a valid interned id.
  bool Contains(TermId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ContainsLocked(id);
  }

  /// Decodes an id; requires Contains(id). The returned reference stays
  /// valid for the dictionary's lifetime (terms are never removed).
  const Term& Decode(TermId id) const;

  /// Decodes, returning an error Status for invalid ids.
  StatusOr<Term> TryDecode(TermId id) const;

  /// Number of interned terms.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return terms_.size();
  }

  bool empty() const { return size() == 0; }

  /// All ids, 1..size(), for iteration.
  TermId min_id() const { return 1; }
  TermId max_id() const { return static_cast<TermId>(size()); }

  /// Pre-sizes the intern index for `n` terms (bulk loads, snapshot load).
  void Reserve(size_t n) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    index_.reserve(n);
  }

 private:
  bool ContainsLocked(TermId id) const {
    return id >= 1 && id <= terms_.size();
  }

  mutable std::shared_mutex mu_;
  // terms_[id - 1] points at the index_ node's key: each term is stored
  // once. unordered_map nodes never move (not even on rehash) and are never
  // erased, so the pointers — and the references Decode() hands out — stay
  // valid for the dictionary's lifetime, across moves included.
  std::deque<const Term*> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace sofya

#endif  // SOFYA_RDF_DICTIONARY_H_
