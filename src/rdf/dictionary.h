// Dictionary encoding: Term <-> TermId.
//
// Standard triple-store design (RDF-3X, HDT): every distinct term is interned
// once and triples hold 32-bit ids, which makes index entries 12 bytes and
// joins integer comparisons. Ids are dense, starting at 1 (0 is the
// null/wildcard id).

#ifndef SOFYA_RDF_DICTIONARY_H_
#define SOFYA_RDF_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace sofya {

/// Bidirectional Term <-> TermId map. Not thread-safe for writes.
class Dictionary {
 public:
  Dictionary() = default;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Convenience: interns an IRI term.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }

  /// Convenience: interns a plain literal term.
  TermId InternLiteral(std::string lexical) {
    return Intern(Term::Literal(std::move(lexical)));
  }

  /// Looks up the id of `term`; kNullTermId if never interned.
  TermId Lookup(const Term& term) const;

  /// Looks up the id of an IRI; kNullTermId if never interned.
  TermId LookupIri(const std::string& iri) const {
    return Lookup(Term::Iri(iri));
  }

  /// True iff `id` is a valid interned id.
  bool Contains(TermId id) const { return id >= 1 && id <= terms_.size(); }

  /// Decodes an id; requires Contains(id).
  const Term& Decode(TermId id) const;

  /// Decodes, returning an error Status for invalid ids.
  StatusOr<Term> TryDecode(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

  bool empty() const { return terms_.empty(); }

  /// All ids, 1..size(), for iteration.
  TermId min_id() const { return 1; }
  TermId max_id() const { return static_cast<TermId>(terms_.size()); }

 private:
  std::vector<Term> terms_;  // terms_[id - 1] is the term for `id`.
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace sofya

#endif  // SOFYA_RDF_DICTIONARY_H_
