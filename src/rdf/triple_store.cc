#include "rdf/triple_store.h"

#include <algorithm>
#include <limits>
#include <string>

namespace sofya {

namespace {

constexpr TermId kMaxTermId = std::numeric_limits<TermId>::max();

// Counts |union| of k sorted, de-duplicated id lists by synchronized
// min-scans. k is the shard count (small), so the linear min probe beats a
// heap.
size_t CountDistinctUnion(const std::vector<std::span<const TermId>>& lists) {
  std::vector<size_t> pos(lists.size(), 0);
  size_t distinct = 0;
  while (true) {
    TermId min_id = kMaxTermId;
    bool any = false;
    for (size_t k = 0; k < lists.size(); ++k) {
      if (pos[k] < lists[k].size()) {
        any = true;
        min_id = std::min(min_id, lists[k][pos[k]]);
      }
    }
    if (!any) break;
    ++distinct;
    for (size_t k = 0; k < lists.size(); ++k) {
      if (pos[k] < lists[k].size() && lists[k][pos[k]] == min_id) ++pos[k];
    }
  }
  return distinct;
}

// Builds an equi-depth histogram over a sorted (duplicate-bearing) column.
// Buckets close once they hold ~n/buckets facts, but never in the middle of
// one term's run, so a term's facts always live in exactly one bucket.
TermHistogram BuildEquiDepth(const std::vector<TermId>& sorted,
                             size_t buckets) {
  TermHistogram h;
  if (sorted.empty()) return h;
  if (buckets == 0) buckets = 1;
  const size_t depth = (sorted.size() + buckets - 1) / buckets;
  h.lower = sorted.front();
  size_t bucket_rows = 0;
  size_t bucket_distinct = 0;
  for (size_t i = 0; i < sorted.size();) {
    size_t run = i + 1;
    while (run < sorted.size() && sorted[run] == sorted[i]) ++run;
    bucket_rows += run - i;
    ++bucket_distinct;
    if (bucket_rows >= depth || run == sorted.size()) {
      h.upper.push_back(sorted[i]);
      h.rows.push_back(bucket_rows);
      h.distinct.push_back(bucket_distinct);
      bucket_rows = 0;
      bucket_distinct = 0;
    }
    i = run;
  }
  return h;
}

}  // namespace

double TermHistogram::EstimateEq(TermId t) const {
  if (empty() || t < lower || t > upper.back()) return 0.0;
  const size_t b = static_cast<size_t>(
      std::lower_bound(upper.begin(), upper.end(), t) - upper.begin());
  return static_cast<double>(rows[b]) /
         static_cast<double>(distinct[b] > 0 ? distinct[b] : 1);
}

double TermHistogram::ExpectedFanout() const {
  if (empty()) return 0.0;
  double weighted = 0.0;
  double total = 0.0;
  for (size_t b = 0; b < rows.size(); ++b) {
    const double r = static_cast<double>(rows[b]);
    weighted += r * r / static_cast<double>(distinct[b] > 0 ? distinct[b] : 1);
    total += r;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

TripleStore::TripleStore(const StoreOptions& options) : options_(options) {
  if (options_.num_hash_shards == 0) options_.num_hash_shards = 1;
  if (options_.split_factor == 0) options_.split_factor = 1;
  shards_.reserve(options_.num_hash_shards);
  for (size_t i = 0; i < options_.num_hash_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void TripleStore::MoveFrom(TripleStore&& other) {
  std::scoped_lock lock(global_mu_, other.global_mu_, hist_mu_,
                        other.hist_mu_);
  hist_memo_ = std::move(other.hist_memo_);
  other.hist_memo_.clear();
  histogram_recomputes_.store(
      other.histogram_recomputes_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  options_ = other.options_;
  shards_ = std::move(other.shards_);
  groups_ = std::move(other.groups_);
  pred_info_ = std::move(other.pred_info_);
  distinct_preds_ = other.distinct_preds_;
  set_ = std::move(other.set_);
  size_ = other.size_;
  mapped_ = other.mapped_;
  mapped_keepalive_ = std::move(other.mapped_keepalive_);
  bulk_depth_ = other.bulk_depth_;
  bulk_dirty_ = other.bulk_dirty_;
  global_stats_ = other.global_stats_;
  global_stats_epoch_ = other.global_stats_epoch_;
  global_stats_valid_ = other.global_stats_valid_;
  epoch_.store(other.epoch_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  stats_recomputes_.store(
      other.stats_recomputes_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  // Leave `other` as a valid empty store.
  other.pred_info_.clear();
  other.distinct_preds_ = 0;
  other.size_ = 0;
  other.mapped_ = false;
  other.bulk_depth_ = 0;
  other.bulk_dirty_ = false;
  other.global_stats_valid_ = false;
  other.shards_.clear();
  for (size_t i = 0; i < other.options_.num_hash_shards; ++i) {
    other.shards_.push_back(std::make_unique<Shard>());
  }
}

uint32_t TripleStore::ShardFor(const Triple& t) const {
  auto it = pred_info_.find(t.predicate);
  if (it != pred_info_.end() && it->second.group >= 0) {
    const PredGroup& g = *groups_[static_cast<size_t>(it->second.group)];
    return g.first_shard + HashId(t.subject) % g.split;
  }
  return HashId(t.predicate) %
         static_cast<uint32_t>(options_.num_hash_shards);
}

void TripleStore::AppendToShard(uint32_t i, const Triple& t) {
  Shard& sh = *shards_[i];
  sh.spo.push_back(t);
  sh.pos.push_back(t);
  sh.osp.push_back(t);
  sh.epoch.fetch_add(1, std::memory_order_relaxed);
  sh.dirty.store(true, std::memory_order_release);
}

bool TripleStore::Insert(const Triple& t) {
  if (mapped_) Thaw();
  if (!set_.insert(t).second) return false;
  ++size_;
  PredInfo& info = pred_info_[t.predicate];
  if (info.facts == 0) ++distinct_preds_;
  ++info.facts;
  AppendToShard(ShardFor(t), t);
  if (bulk_depth_ > 0) {
    bulk_dirty_ = true;
  } else {
    epoch_.fetch_add(1, std::memory_order_release);
    if (options_.promote_threshold > 0 && info.group < 0 &&
        info.facts > options_.promote_threshold) {
      Promote(t.predicate, info);
    }
  }
  return true;
}

bool TripleStore::Erase(const Triple& t) {
  if (mapped_) Thaw();
  if (set_.erase(t) == 0) return false;
  --size_;
  auto it = pred_info_.find(t.predicate);
  // The set held the triple, so routing info must exist.
  Shard& sh = *shards_[ShardFor(t)];
  --it->second.facts;
  if (it->second.facts == 0) --distinct_preds_;
  auto erase_one = [&](std::vector<Triple>& v) {
    auto pos = std::find(v.begin(), v.end(), t);
    if (pos != v.end()) {
      *pos = v.back();
      v.pop_back();
    }
  };
  erase_one(sh.spo);
  erase_one(sh.pos);
  erase_one(sh.osp);
  sh.epoch.fetch_add(1, std::memory_order_relaxed);
  sh.dirty.store(true, std::memory_order_release);
  if (bulk_depth_ > 0) {
    bulk_dirty_ = true;
  } else {
    epoch_.fetch_add(1, std::memory_order_release);
  }
  return true;
}

bool TripleStore::Contains(const Triple& t) const {
  if (!mapped_) return set_.count(t) > 0;
  // Mapped mode keeps no hash set; membership is a binary search in the
  // owning shard's SPO segment.
  auto it = pred_info_.find(t.predicate);
  if (it == pred_info_.end() || it->second.facts == 0) return false;
  const Shard& sh = *shards_[ShardFor(t)];
  return std::binary_search(sh.spo_v.begin(), sh.spo_v.end(), t, SpoLess());
}

void TripleStore::Promote(TermId p, PredInfo& info) {
  const uint32_t src_idx =
      HashId(p) % static_cast<uint32_t>(options_.num_hash_shards);
  Shard& src = *shards_[src_idx];
  const uint32_t first = static_cast<uint32_t>(shards_.size());
  const uint32_t split = static_cast<uint32_t>(options_.split_factor);
  for (uint32_t k = 0; k < split; ++k) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Partition p's triples out of the hash shard into the sub-shards by
  // subject hash. The stable sweep preserves relative order, so a clean
  // source shard stays sorted; it is re-marked dirty anyway because its
  // views must be refreshed after shrinking.
  auto split_vec = [&](std::vector<Triple>& v,
                       std::vector<Triple> Shard::* member) {
    auto keep = v.begin();
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (it->predicate == p) {
        Shard& dst = *shards_[first + HashId(it->subject) % split];
        (dst.*member).push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    v.erase(keep, v.end());
  };
  split_vec(src.spo, &Shard::spo);
  split_vec(src.pos, &Shard::pos);
  split_vec(src.osp, &Shard::osp);
  src.epoch.fetch_add(1, std::memory_order_relaxed);
  src.dirty.store(true, std::memory_order_release);
  for (uint32_t k = 0; k < split; ++k) {
    Shard& sh = *shards_[first + k];
    sh.epoch.fetch_add(1, std::memory_order_relaxed);
    sh.dirty.store(true, std::memory_order_release);
  }
  auto group = std::make_unique<PredGroup>();
  group->pred = p;
  group->first_shard = first;
  group->split = split;
  info.group = static_cast<int32_t>(groups_.size());
  groups_.push_back(std::move(group));
}

void TripleStore::Thaw() {
  if (!mapped_) return;
  set_.reserve(size_);
  for (auto& shard : shards_) {
    Shard& sh = *shard;
    if (sh.mapped) {
      sh.spo.assign(sh.spo_v.begin(), sh.spo_v.end());
      sh.pos.assign(sh.pos_v.begin(), sh.pos_v.end());
      sh.osp.assign(sh.osp_v.begin(), sh.osp_v.end());
      sh.spo_v = {sh.spo.data(), sh.spo.size()};
      sh.pos_v = {sh.pos.data(), sh.pos.size()};
      sh.osp_v = {sh.osp.data(), sh.osp.size()};
      sh.mapped = false;  // Still sorted; dirty stays false.
    }
    for (const Triple& t : sh.spo) set_.insert(t);
  }
  mapped_ = false;
  mapped_keepalive_.reset();
}

void TripleStore::BeginBulkLoad(size_t expected) {
  if (mapped_) Thaw();
  ++bulk_depth_;
  if (expected > 0) Reserve(size_ + expected);
}

void TripleStore::EndBulkLoad() {
  if (bulk_depth_ == 0) return;
  if (--bulk_depth_ > 0) return;
  if (!bulk_dirty_) return;
  bulk_dirty_ = false;
  // One promotion pass for everything that crossed the threshold during the
  // load, then a single epoch bump for the whole file.
  if (options_.promote_threshold > 0) {
    std::vector<TermId> to_promote;
    for (const auto& [p, info] : pred_info_) {
      if (info.group < 0 && info.facts > options_.promote_threshold) {
        to_promote.push_back(p);
      }
    }
    std::sort(to_promote.begin(), to_promote.end());  // Deterministic order.
    for (TermId p : to_promote) Promote(p, pred_info_.find(p)->second);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

void TripleStore::Reserve(size_t n) { set_.reserve(n); }

void TripleStore::EnsureShardSorted(const Shard& sh) const {
  if (sh.mapped) return;  // Snapshot segments are written sorted.
  // Double-checked: steady-state reads cost one acquire load; the first
  // read after a write sorts under the lock while latecomers wait.
  if (!sh.dirty.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(sh.mu);
  if (!sh.dirty.load(std::memory_order_relaxed)) return;
  std::sort(sh.spo.begin(), sh.spo.end(), SpoLess());
  std::sort(sh.pos.begin(), sh.pos.end(), PosLess());
  std::sort(sh.osp.begin(), sh.osp.end(), OspLess());
  sh.spo_v = {sh.spo.data(), sh.spo.size()};
  sh.pos_v = {sh.pos.data(), sh.pos.size()};
  sh.osp_v = {sh.osp.data(), sh.osp.size()};
  sh.dirty.store(false, std::memory_order_release);
}

void TripleStore::EnsureIndexed() const {
  for (const auto& shard : shards_) EnsureShardSorted(*shard);
}

std::pair<uint32_t, uint32_t> TripleStore::ShardBounds(
    const TriplePattern& p) const {
  if (p.has_predicate()) {
    auto it = pred_info_.find(p.predicate);
    if (it == pred_info_.end() || it->second.facts == 0) return {0, 0};
    if (it->second.group >= 0) {
      const PredGroup& g = *groups_[static_cast<size_t>(it->second.group)];
      if (p.has_subject()) {
        const uint32_t i = g.first_shard + HashId(p.subject) % g.split;
        return {i, i + 1};
      }
      return {g.first_shard, g.first_shard + g.split};
    }
    const uint32_t i = HashId(p.predicate) %
                       static_cast<uint32_t>(options_.num_hash_shards);
    return {i, i + 1};
  }
  return {0, static_cast<uint32_t>(shards_.size())};
}

std::span<const Triple> TripleStore::ShardRange(
    const Shard& sh, const TriplePattern& pattern) const {
  const bool s = pattern.has_subject();
  const bool p = pattern.has_predicate();
  const bool o = pattern.has_object();

  // Pick the index whose ordering makes every bound position a prefix, then
  // binary-search the [lo, hi) range of that prefix. Unlike the pre-sharding
  // store, all eight shapes are full prefixes here (〈s,p,o〉 uses SPO), so
  // residual checks are no-ops.
  if (s && !(o && !p)) {
    // (s ? ?), (s p ?), (s p o): SPO, prefix (s), (s,p) or (s,p,o).
    const Triple lo(pattern.subject, p ? pattern.predicate : 0,
                    o ? pattern.object : 0);
    const Triple hi(pattern.subject, p ? pattern.predicate : kMaxTermId,
                    o ? pattern.object : kMaxTermId);
    auto first =
        std::lower_bound(sh.spo_v.begin(), sh.spo_v.end(), lo, SpoLess());
    auto last =
        std::upper_bound(sh.spo_v.begin(), sh.spo_v.end(), hi, SpoLess());
    return sh.spo_v.subspan(
        static_cast<size_t>(first - sh.spo_v.begin()),
        static_cast<size_t>(last - first));
  }
  if (p && !s) {
    // (? p ?) or (? p o): POS, prefix (p) or (p, o).
    const Triple lo(kNullTermId, pattern.predicate, o ? pattern.object : 0);
    const Triple hi(kMaxTermId, pattern.predicate,
                    o ? pattern.object : kMaxTermId);
    auto first =
        std::lower_bound(sh.pos_v.begin(), sh.pos_v.end(), lo, PosLess());
    auto last =
        std::upper_bound(sh.pos_v.begin(), sh.pos_v.end(), hi, PosLess());
    return sh.pos_v.subspan(
        static_cast<size_t>(first - sh.pos_v.begin()),
        static_cast<size_t>(last - first));
  }
  if (o) {
    // (? ? o) or (s ? o): OSP, prefix (o) or (o, s).
    const Triple lo(s ? pattern.subject : 0, kNullTermId, pattern.object);
    const Triple hi(s ? pattern.subject : kMaxTermId, kMaxTermId,
                    pattern.object);
    auto first =
        std::lower_bound(sh.osp_v.begin(), sh.osp_v.end(), lo, OspLess());
    auto last =
        std::upper_bound(sh.osp_v.begin(), sh.osp_v.end(), hi, OspLess());
    return sh.osp_v.subspan(
        static_cast<size_t>(first - sh.osp_v.begin()),
        static_cast<size_t>(last - first));
  }
  // (? ? ?): full shard scan over SPO.
  return sh.spo_v;
}

std::span<const Triple> TripleStore::PreparedShardRange(
    uint32_t i, const TriplePattern& pattern) const {
  const Shard& sh = *shards_[i];
  EnsureShardSorted(sh);
  return ShardRange(sh, pattern);
}

MatchView TripleStore::MatchSpans(const TriplePattern& pattern) const {
  MatchView view;
  const auto [lo, hi] = ShardBounds(pattern);
  for (uint32_t i = lo; i < hi; ++i) {
    view.Append(PreparedShardRange(i, pattern));
  }
  return view;
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  ForEachMatch(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::CountMatches(const TriplePattern& pattern) const {
  // Every pattern shape is a full prefix of its chosen per-shard index, so
  // the count is just the sum of span widths.
  return MatchSpans(pattern).total();
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  ForEachMatch(TriplePattern(s, p, kNullTermId), [&](const Triple& t) {
    out.push_back(t.object);
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  ForEachMatch(TriplePattern(kNullTermId, p, o), [&](const Triple& t) {
    out.push_back(t.subject);
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::SubjectsOf(TermId p) const {
  std::vector<TermId> out;
  ForEachMatch(TriplePattern(kNullTermId, p, kNullTermId),
               [&](const Triple& t) {
                 out.push_back(t.subject);
                 return true;
               });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::Predicates() const {
  std::vector<TermId> out;
  out.reserve(distinct_preds_);
  for (const auto& [p, info] : pred_info_) {
    if (info.facts > 0) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TermId> TripleStore::PromotedPredicates() const {
  std::vector<TermId> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) out.push_back(g->pred);
  return out;
}

TripleStore::MappedShardSegments TripleStore::ShardSegments(size_t i) const {
  const Shard& sh = *shards_[i];
  EnsureShardSorted(sh);
  return {sh.spo_v, sh.pos_v, sh.osp_v};
}

PredicateStats TripleStore::ShardStatsFor(uint32_t i, TermId p) const {
  const Shard& sh = *shards_[i];
  EnsureShardSorted(sh);
  const uint64_t epoch = sh.epoch.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.stats_epoch != epoch) {
      // First stats read after a write to this shard: only this shard's
      // memo is stale; every other shard keeps its entries.
      sh.stats.clear();
      sh.stats_epoch = epoch;
    }
    auto it = sh.stats.find(p);
    if (it != sh.stats.end()) return it->second;
  }

  PredicateStats stats;
  std::vector<TermId> subjects;
  // POS orders p's range by (object, subject): objects are transition
  // counts, subjects need one sort.
  TermId prev_object = kNullTermId;
  bool first = true;
  for (const Triple& t :
       ShardRange(sh, TriplePattern(kNullTermId, p, kNullTermId))) {
    ++stats.facts;
    subjects.push_back(t.subject);
    if (first || t.object != prev_object) ++stats.distinct_objects;
    prev_object = t.object;
    first = false;
  }
  std::sort(subjects.begin(), subjects.end());
  subjects.erase(std::unique(subjects.begin(), subjects.end()),
                 subjects.end());
  stats.distinct_subjects = subjects.size();
  stats_recomputes_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    // Only memoize into the epoch the scan was computed against.
    if (sh.stats_epoch == epoch) sh.stats.emplace(p, stats);
  }
  return stats;
}

PredicateStats TripleStore::GroupStatsFor(const PredGroup& g) const {
  // Key the merged memo by the sum of sub-shard epochs: epochs only grow,
  // so the sum strictly increases under any write to the group.
  uint64_t key = 0;
  for (uint32_t k = 0; k < g.split; ++k) {
    EnsureShardSorted(*shards_[g.first_shard + k]);
    key += shards_[g.first_shard + k]->epoch.load(std::memory_order_acquire);
  }
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.memo_valid && g.memo_key == key) return g.memo;
  }

  PredicateStats stats;
  // Sub-shards partition by subject hash, so per-sub distinct subjects are
  // disjoint and sum exactly.
  for (uint32_t k = 0; k < g.split; ++k) {
    const PredicateStats sub = ShardStatsFor(g.first_shard + k, g.pred);
    stats.facts += sub.facts;
    stats.distinct_subjects += sub.distinct_subjects;
  }
  // Objects can repeat across sub-shards: k-way distinct merge over the
  // sorted object columns of each sub-shard's POS range.
  const TriplePattern pat(kNullTermId, g.pred, kNullTermId);
  std::vector<std::span<const Triple>> ranges;
  ranges.reserve(g.split);
  for (uint32_t k = 0; k < g.split; ++k) {
    auto r = ShardRange(*shards_[g.first_shard + k], pat);
    if (!r.empty()) ranges.push_back(r);
  }
  std::vector<size_t> pos(ranges.size(), 0);
  while (true) {
    TermId min_obj = kMaxTermId;
    bool any = false;
    for (size_t k = 0; k < ranges.size(); ++k) {
      if (pos[k] < ranges[k].size()) {
        any = true;
        min_obj = std::min(min_obj, ranges[k][pos[k]].object);
      }
    }
    if (!any) break;
    ++stats.distinct_objects;
    for (size_t k = 0; k < ranges.size(); ++k) {
      if (pos[k] >= ranges[k].size() ||
          ranges[k][pos[k]].object != min_obj) {
        continue;
      }
      if (min_obj == kMaxTermId) {
        pos[k] = ranges[k].size();
        continue;
      }
      // Skip past every (p, min_obj, *) entry in this sub-range.
      const Triple next_key(0, g.pred, min_obj + 1);
      auto it = std::lower_bound(ranges[k].begin() + pos[k], ranges[k].end(),
                                 next_key, PosLess());
      pos[k] = static_cast<size_t>(it - ranges[k].begin());
    }
  }
  stats_recomputes_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g.mu);
    g.memo = stats;
    g.memo_key = key;
    g.memo_valid = true;
  }
  return stats;
}

PredicateStats TripleStore::StatsFor(TermId p) const {
  auto it = pred_info_.find(p);
  if (it == pred_info_.end() || it->second.facts == 0) {
    return PredicateStats();
  }
  if (it->second.group >= 0) {
    return GroupStatsFor(*groups_[static_cast<size_t>(it->second.group)]);
  }
  return ShardStatsFor(
      HashId(p) % static_cast<uint32_t>(options_.num_hash_shards), p);
}

PredicateHistograms TripleStore::HistogramFor(TermId p) const {
  auto info_it = pred_info_.find(p);
  if (info_it == pred_info_.end() || info_it->second.facts == 0) {
    return PredicateHistograms();
  }

  // The memo key is the owning shard's epoch — the epoch sum for a group —
  // exactly the keying StatsFor/GroupStatsFor use, so invalidation
  // granularity matches: a write elsewhere leaves this entry valid.
  uint64_t key = 0;
  if (info_it->second.group >= 0) {
    const PredGroup& g = *groups_[static_cast<size_t>(info_it->second.group)];
    for (uint32_t k = 0; k < g.split; ++k) {
      EnsureShardSorted(*shards_[g.first_shard + k]);
      key += shards_[g.first_shard + k]->epoch.load(std::memory_order_acquire);
    }
  } else {
    const uint32_t i =
        HashId(p) % static_cast<uint32_t>(options_.num_hash_shards);
    EnsureShardSorted(*shards_[i]);
    key = shards_[i]->epoch.load(std::memory_order_acquire);
  }
  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    auto it = hist_memo_.find(p);
    if (it != hist_memo_.end() && it->second.key == key) {
      return it->second.hist;
    }
  }

  // One walk of p's facts; both columns are collected and sorted here
  // rather than k-way merged — the rebuild is memoized, so simplicity wins.
  std::vector<TermId> subjects, objects;
  subjects.reserve(info_it->second.facts);
  objects.reserve(info_it->second.facts);
  ForEachMatch(TriplePattern(kNullTermId, p, kNullTermId),
               [&](const Triple& t) {
                 subjects.push_back(t.subject);
                 objects.push_back(t.object);
                 return true;
               });
  std::sort(subjects.begin(), subjects.end());
  std::sort(objects.begin(), objects.end());
  PredicateHistograms hist;
  hist.subjects = BuildEquiDepth(subjects, options_.histogram_buckets);
  hist.objects = BuildEquiDepth(objects, options_.histogram_buckets);
  histogram_recomputes_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    HistEntry& entry = hist_memo_[p];
    entry.key = key;
    entry.hist = hist;
  }
  return hist;
}

StoreStats TripleStore::GlobalStats() const {
  const uint64_t epoch = mutation_epoch();
  {
    std::lock_guard<std::mutex> lock(global_mu_);
    if (global_stats_valid_ && global_stats_epoch_ == epoch) {
      return global_stats_;
    }
  }

  // Refresh each shard's sorted distinct-subject/object aggregates (keyed
  // by that shard's epoch, so an untouched shard reuses its lists), then
  // count the unions. Values are identical to a global-index walk: a
  // distinct id is counted once no matter how many shards it spans.
  std::vector<std::span<const TermId>> subject_lists;
  std::vector<std::span<const TermId>> object_lists;
  subject_lists.reserve(shards_.size());
  object_lists.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const Shard& sh = *shard;
    EnsureShardSorted(sh);
    const uint64_t shard_epoch = sh.epoch.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(sh.mu);
    if (!sh.agg_valid || sh.agg_epoch != shard_epoch) {
      sh.agg_subjects.clear();
      sh.agg_objects.clear();
      for (size_t i = 0; i < sh.spo_v.size(); ++i) {
        if (i == 0 || sh.spo_v[i].subject != sh.spo_v[i - 1].subject) {
          sh.agg_subjects.push_back(sh.spo_v[i].subject);
        }
      }
      for (size_t i = 0; i < sh.osp_v.size(); ++i) {
        if (i == 0 || sh.osp_v[i].object != sh.osp_v[i - 1].object) {
          sh.agg_objects.push_back(sh.osp_v[i].object);
        }
      }
      sh.agg_epoch = shard_epoch;
      sh.agg_valid = true;
      stats_recomputes_.fetch_add(1, std::memory_order_relaxed);
    }
    // Safe to read outside the lock: an agg valid for the current epoch is
    // only rewritten after a store write, which cannot overlap reads.
    subject_lists.push_back({sh.agg_subjects.data(), sh.agg_subjects.size()});
    object_lists.push_back({sh.agg_objects.data(), sh.agg_objects.size()});
  }

  StoreStats stats;
  stats.triples = size_;
  stats.distinct_predicates = distinct_preds_;
  stats.distinct_subjects = CountDistinctUnion(subject_lists);
  stats.distinct_objects = CountDistinctUnion(object_lists);
  {
    std::lock_guard<std::mutex> lock(global_mu_);
    global_stats_ = stats;
    global_stats_epoch_ = epoch;
    global_stats_valid_ = true;
  }
  return stats;
}

Status TripleStore::AttachMapped(MappedLayout layout) {
  if (size_ != 0 || !set_.empty()) {
    return Status::InvalidArgument(
        "AttachMapped requires an empty TripleStore");
  }
  StoreOptions opts = layout.options;
  if (opts.num_hash_shards == 0) opts.num_hash_shards = 1;
  if (opts.split_factor == 0) opts.split_factor = 1;
  const size_t expected =
      opts.num_hash_shards + layout.group_preds.size() * opts.split_factor;
  if (layout.shards.size() != expected) {
    return Status::InvalidArgument("snapshot shard table has " +
                                   std::to_string(layout.shards.size()) +
                                   " shards, layout implies " +
                                   std::to_string(expected));
  }
  for (const auto& seg : layout.shards) {
    if (seg.spo.size() != seg.pos.size() || seg.spo.size() != seg.osp.size()) {
      return Status::InvalidArgument(
          "snapshot shard segments disagree on triple count");
    }
  }

  options_ = opts;
  shards_.clear();
  groups_.clear();
  pred_info_.clear();
  distinct_preds_ = 0;
  size_ = 0;
  for (size_t i = 0; i < layout.shards.size(); ++i) {
    auto sh = std::make_unique<Shard>();
    sh->spo_v = layout.shards[i].spo;
    sh->pos_v = layout.shards[i].pos;
    sh->osp_v = layout.shards[i].osp;
    sh->mapped = true;
    size_ += sh->spo_v.size();
    shards_.push_back(std::move(sh));
  }
  // Dedicated groups, in file (= promotion) order.
  for (size_t gi = 0; gi < layout.group_preds.size(); ++gi) {
    auto group = std::make_unique<PredGroup>();
    group->pred = layout.group_preds[gi];
    group->first_shard = static_cast<uint32_t>(opts.num_hash_shards +
                                               gi * opts.split_factor);
    group->split = static_cast<uint32_t>(opts.split_factor);
    PredInfo& info = pred_info_[group->pred];
    if (info.facts > 0 || info.group >= 0) {
      return Status::InvalidArgument("duplicate promoted predicate in snapshot");
    }
    info.group = static_cast<int32_t>(gi);
    for (uint32_t k = 0; k < group->split; ++k) {
      info.facts += shards_[group->first_shard + k]->spo_v.size();
    }
    if (info.facts > 0) ++distinct_preds_;
    groups_.push_back(std::move(group));
  }
  // Hash shards: rebuild the routing map by skip-scanning each POS segment.
  for (size_t i = 0; i < opts.num_hash_shards; ++i) {
    const std::span<const Triple> pos_v = shards_[i]->pos_v;
    size_t at = 0;
    while (at < pos_v.size()) {
      const TermId p = pos_v[at].predicate;
      if (HashId(p) % static_cast<uint32_t>(opts.num_hash_shards) != i) {
        return Status::InvalidArgument(
            "snapshot predicate routed to wrong hash shard");
      }
      size_t end;
      if (p == std::numeric_limits<TermId>::max()) {
        end = pos_v.size();
      } else {
        auto it = std::lower_bound(pos_v.begin() + at, pos_v.end(),
                                   Triple(0, p + 1, 0), PosLess());
        end = static_cast<size_t>(it - pos_v.begin());
      }
      PredInfo& info = pred_info_[p];
      if (info.group >= 0 || info.facts > 0) {
        return Status::InvalidArgument(
            "snapshot predicate appears in multiple shards");
      }
      info.facts = end - at;
      ++distinct_preds_;
      at = end;
    }
  }

  mapped_ = true;
  mapped_keepalive_ = std::move(layout.keepalive);
  bulk_depth_ = 0;
  bulk_dirty_ = false;
  {
    std::lock_guard<std::mutex> lock(global_mu_);
    global_stats_valid_ = false;
  }
  // Attaching replaces the (empty) contents: bump so epoch-keyed consumers
  // re-derive.
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

}  // namespace sofya
