#include "rdf/triple_store.h"

#include <algorithm>
#include <limits>

namespace sofya {

namespace {
constexpr TermId kMaxTermId = std::numeric_limits<TermId>::max();
}  // namespace

bool TripleStore::Insert(const Triple& t) {
  const bool inserted = set_.insert(t).second;
  if (inserted) {
    spo_.push_back(t);
    pos_.push_back(t);
    osp_.push_back(t);
    // Stats memos are epoch-keyed, not cleared here: bumping the epoch is
    // enough to invalidate them, which keeps bulk loads O(1) per insert.
    epoch_.fetch_add(1, std::memory_order_release);
    dirty_.store(true, std::memory_order_release);
  }
  return inserted;
}

bool TripleStore::Erase(const Triple& t) {
  if (set_.erase(t) == 0) return false;
  // Erase from the append vectors; defer re-sorting.
  auto erase_one = [&](std::vector<Triple>& v) {
    auto it = std::find(v.begin(), v.end(), t);
    if (it != v.end()) {
      *it = v.back();
      v.pop_back();
    }
  };
  erase_one(spo_);
  erase_one(pos_);
  erase_one(osp_);
  epoch_.fetch_add(1, std::memory_order_release);
  dirty_.store(true, std::memory_order_release);
  return true;
}

void TripleStore::EnsureSorted() const {
  // Double-checked: steady-state reads cost one relaxed-acquire load; the
  // first read after a write sorts under the lock while latecomers wait.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (!dirty_.load(std::memory_order_relaxed)) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  std::sort(pos_.begin(), pos_.end(), PosLess());
  std::sort(osp_.begin(), osp_.end(), OspLess());
  dirty_.store(false, std::memory_order_release);
}

std::span<const Triple> TripleStore::Range(
    const TriplePattern& pattern) const {
  EnsureSorted();
  const bool s = pattern.has_subject();
  const bool p = pattern.has_predicate();
  const bool o = pattern.has_object();

  // Select the index whose ordering makes the bound positions a prefix, then
  // binary-search for the [lo, hi) range of that prefix.
  if (s && !o) {
    // (s ? ?) or (s p ?): SPO, prefix (s) or (s, p).
    const Triple lo(pattern.subject, p ? pattern.predicate : 0,
                    kNullTermId);
    const Triple hi(pattern.subject, p ? pattern.predicate : kMaxTermId,
                    kMaxTermId);
    auto first = std::lower_bound(spo_.begin(), spo_.end(), lo, SpoLess());
    auto last = std::upper_bound(spo_.begin(), spo_.end(), hi, SpoLess());
    return {spo_.data() + (first - spo_.begin()),
            static_cast<size_t>(last - first)};
  }
  if (p && !s) {
    // (? p ?) or (? p o): POS, prefix (p) or (p, o).
    const Triple lo(kNullTermId, pattern.predicate, o ? pattern.object : 0);
    const Triple hi(kMaxTermId, pattern.predicate,
                    o ? pattern.object : kMaxTermId);
    auto first = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess());
    auto last = std::upper_bound(pos_.begin(), pos_.end(), hi, PosLess());
    return {pos_.data() + (first - pos_.begin()),
            static_cast<size_t>(last - first)};
  }
  if (o) {
    // (? ? o) or (s ? o): OSP, prefix (o) or (o, s). (s p o) also lands
    // here when all three are bound; the range then has width <= 1 * preds.
    const Triple lo(s ? pattern.subject : 0, kNullTermId, pattern.object);
    const Triple hi(s ? pattern.subject : kMaxTermId, kMaxTermId,
                    pattern.object);
    auto first = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess());
    auto last = std::upper_bound(osp_.begin(), osp_.end(), hi, OspLess());
    return {osp_.data() + (first - osp_.begin()),
            static_cast<size_t>(last - first)};
  }
  // (? ? ?): full scan over SPO.
  return {spo_.data(), spo_.size()};
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  for (const Triple& t : Range(pattern)) {
    if (pattern.Matches(t)) out.push_back(t);
  }
  return out;
}

size_t TripleStore::CountMatches(const TriplePattern& pattern) const {
  // For fully-prefix patterns the residual Matches() check is a no-op, but
  // (s p o) routed through OSP needs the predicate filter.
  size_t n = 0;
  for (const Triple& t : Range(pattern)) {
    if (pattern.Matches(t)) ++n;
  }
  return n;
}

void TripleStore::ForEachMatch(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  for (const Triple& t : Range(pattern)) {
    if (!pattern.Matches(t)) continue;
    if (!fn(t)) return;
  }
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  for (const Triple& t : Range(TriplePattern(s, p, kNullTermId))) {
    out.push_back(t.object);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  for (const Triple& t : Range(TriplePattern(kNullTermId, p, o))) {
    out.push_back(t.subject);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::SubjectsOf(TermId p) const {
  std::vector<TermId> out;
  for (const Triple& t : Range(TriplePattern(kNullTermId, p, kNullTermId))) {
    out.push_back(t.subject);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::Predicates() const {
  EnsureSorted();
  std::vector<TermId> out;
  TermId last = kNullTermId;
  for (const Triple& t : pos_) {
    if (t.predicate != last) {
      out.push_back(t.predicate);
      last = t.predicate;
    }
  }
  return out;
}

PredicateStats TripleStore::StatsFor(TermId p) const {
  EnsureSorted();
  const uint64_t epoch = mutation_epoch();
  {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (stats_cache_epoch_ != epoch) {
      // First stats read after a write: the whole memo is one epoch stale.
      stats_cache_.clear();
      stats_cache_epoch_ = epoch;
    }
    auto it = stats_cache_.find(p);
    if (it != stats_cache_.end()) return it->second;
  }

  PredicateStats stats;
  std::vector<TermId> subjects;
  std::vector<TermId> objects;
  for (const Triple& t : Range(TriplePattern(kNullTermId, p, kNullTermId))) {
    ++stats.facts;
    subjects.push_back(t.subject);
    objects.push_back(t.object);
  }
  std::sort(subjects.begin(), subjects.end());
  subjects.erase(std::unique(subjects.begin(), subjects.end()),
                 subjects.end());
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
  stats.distinct_subjects = subjects.size();
  stats.distinct_objects = objects.size();
  {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    // Only memoize into the epoch the scan was computed against.
    if (stats_cache_epoch_ == epoch) stats_cache_.emplace(p, stats);
  }
  return stats;
}

StoreStats TripleStore::GlobalStats() const {
  EnsureSorted();
  const uint64_t epoch = mutation_epoch();
  {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (global_stats_valid_ && global_stats_epoch_ == epoch) {
      return global_stats_;
    }
  }

  // Each index is sorted by the component of interest first, so distinct
  // counts are transition counts — one O(n) walk per component.
  StoreStats stats;
  stats.triples = spo_.size();
  auto transitions = [](const std::vector<Triple>& v, auto key) {
    size_t n = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i == 0 || key(v[i]) != key(v[i - 1])) ++n;
    }
    return n;
  };
  stats.distinct_subjects =
      transitions(spo_, [](const Triple& t) { return t.subject; });
  stats.distinct_predicates =
      transitions(pos_, [](const Triple& t) { return t.predicate; });
  stats.distinct_objects =
      transitions(osp_, [](const Triple& t) { return t.object; });
  {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    global_stats_ = stats;
    global_stats_epoch_ = epoch;
    global_stats_valid_ = true;
  }
  return stats;
}

}  // namespace sofya
