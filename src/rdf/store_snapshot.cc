#include "rdf/store_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/checksum.h"

namespace sofya {

namespace {

constexpr char kMagic[8] = {'S', 'O', 'F', 'Y', 'S', 'N', 'A', 'P'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 96;

// Fixed-size header at offset 0. Native-endian; a snapshot is a cache for
// the machine that wrote it, not an interchange format.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t num_hash_shards;
  uint32_t split_factor;
  uint32_t num_groups;
  uint64_t promote_threshold;
  uint64_t term_count;
  uint64_t triple_count;
  uint64_t dict_offset;
  uint64_t dict_size;
  uint64_t checksum;   // Over bytes [kHeaderSize, file_size).
  uint64_t file_size;  // Total, for truncation detection.
  uint64_t reserved0;
  uint64_t reserved1;
};
static_assert(sizeof(SnapshotHeader) == kHeaderSize,
              "snapshot header must be exactly 96 bytes");

// Per-shard entry in the shard table.
struct ShardEntry {
  uint64_t count;    // Triples in this shard (same for SPO/POS/OSP).
  uint64_t spo_off;  // Absolute file offsets, 8-byte aligned.
  uint64_t pos_off;
  uint64_t osp_off;
};
static_assert(sizeof(ShardEntry) == 32, "shard table entry must be 32 bytes");

// Fixed part of one dictionary record; followed by lexical, datatype and
// language bytes back to back.
struct TermRecord {
  uint8_t kind;
  uint8_t pad[3];
  uint32_t lexical_len;
  uint32_t datatype_len;
  uint32_t language_len;
};
static_assert(sizeof(TermRecord) == 16, "term record must be 16 bytes");

inline uint64_t AlignUp8(uint64_t x) { return (x + 7) & ~uint64_t{7}; }

// RAII read-only mapping of a whole file.
class MappedFile {
 public:
  static StatusOr<std::shared_ptr<MappedFile>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::NotFound("cannot open snapshot: " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      return Status::InvalidArgument("cannot stat snapshot (or empty file): " +
                                     path);
    }
    void* base = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    ::close(fd);  // The mapping keeps the file alive.
    if (base == MAP_FAILED) {
      return Status::Internal("mmap failed for snapshot: " + path);
    }
    // Readahead hints for the cold-start path: the loader verifies the
    // checksum and the first scans walk sorted segments front to back, both
    // sequential; WILLNEED starts paging immediately instead of one fault
    // at a time. Advisory only — failure is ignored — and opt-out via env
    // for the bench's cold/no-hint contrast.
#if defined(MADV_SEQUENTIAL) || defined(MADV_WILLNEED)
    if (std::getenv("SOFYA_SNAPSHOT_NO_MADVISE") == nullptr) {
#ifdef MADV_SEQUENTIAL
      (void)::madvise(base, static_cast<size_t>(st.st_size), MADV_SEQUENTIAL);
#endif
#ifdef MADV_WILLNEED
      (void)::madvise(base, static_cast<size_t>(st.st_size), MADV_WILLNEED);
#endif
    }
#endif
    auto file = std::shared_ptr<MappedFile>(new MappedFile());
    file->base_ = base;
    file->size_ = static_cast<size_t>(st.st_size);
    return file;
  }

  ~MappedFile() {
    if (base_ != nullptr) ::munmap(base_, size_);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(base_); }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;
  void* base_ = nullptr;
  size_t size_ = 0;
};

// Serializes the dictionary, terms in id order.
std::string SerializeDictionary(const Dictionary& dict) {
  std::string out;
  for (TermId id = dict.min_id(); id <= dict.max_id(); ++id) {
    const Term& t = dict.Decode(id);
    TermRecord rec{};
    rec.kind = static_cast<uint8_t>(t.kind());
    rec.lexical_len = static_cast<uint32_t>(t.lexical().size());
    rec.datatype_len = static_cast<uint32_t>(t.datatype().size());
    rec.language_len = static_cast<uint32_t>(t.language().size());
    out.append(reinterpret_cast<const char*>(&rec), sizeof(rec));
    out.append(t.lexical());
    out.append(t.datatype());
    out.append(t.language());
  }
  return out;
}

}  // namespace

StatusOr<SnapshotReport> SaveStoreSnapshot(const TripleStore& store,
                                           const Dictionary& dict,
                                           const std::string& path) {
  store.EnsureIndexed();
  const StoreOptions& opts = store.options();
  const std::vector<TermId> group_preds = store.PromotedPredicates();
  const size_t num_shards = store.num_shards();

  const std::string dict_buf = SerializeDictionary(dict);

  // Lay out the file up front so the shard table can carry absolute
  // offsets: header, group table, shard table, dictionary, segments.
  const uint64_t group_table_off = kHeaderSize;
  const uint64_t shard_table_off =
      group_table_off + group_preds.size() * sizeof(uint64_t);
  const uint64_t dict_off =
      AlignUp8(shard_table_off + num_shards * sizeof(ShardEntry));
  uint64_t cursor = AlignUp8(dict_off + dict_buf.size());

  std::vector<ShardEntry> table(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    const TripleStore::MappedShardSegments seg = store.ShardSegments(i);
    table[i].count = seg.spo.size();
    table[i].spo_off = cursor;
    cursor = AlignUp8(cursor + seg.spo.size() * sizeof(Triple));
    table[i].pos_off = cursor;
    cursor = AlignUp8(cursor + seg.pos.size() * sizeof(Triple));
    table[i].osp_off = cursor;
    cursor = AlignUp8(cursor + seg.osp.size() * sizeof(Triple));
  }
  const uint64_t file_size = cursor;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot write snapshot: " + path);

  Checksummer sum;
  uint64_t written = kHeaderSize;
  // Header placeholder first; the real header (with checksum) lands last.
  {
    const std::string zeros(kHeaderSize, '\0');
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  auto emit = [&](const void* data, size_t n) {
    if (n == 0) return;
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    sum.Update(data, n);
    written += n;
  };
  auto pad_to = [&](uint64_t off) {
    static const char kZeros[8] = {0};
    while (written < off) {
      emit(kZeros, std::min<size_t>(8, off - written));
    }
  };

  for (TermId p : group_preds) {
    const uint64_t id = p;
    emit(&id, sizeof(id));
  }
  emit(table.data(), table.size() * sizeof(ShardEntry));
  pad_to(dict_off);
  emit(dict_buf.data(), dict_buf.size());
  for (size_t i = 0; i < num_shards; ++i) {
    const TripleStore::MappedShardSegments seg = store.ShardSegments(i);
    pad_to(table[i].spo_off);
    emit(seg.spo.data(), seg.spo.size() * sizeof(Triple));
    pad_to(table[i].pos_off);
    emit(seg.pos.data(), seg.pos.size() * sizeof(Triple));
    pad_to(table[i].osp_off);
    emit(seg.osp.data(), seg.osp.size() * sizeof(Triple));
  }
  pad_to(file_size);

  SnapshotHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_hash_shards = static_cast<uint32_t>(opts.num_hash_shards);
  header.split_factor = static_cast<uint32_t>(opts.split_factor);
  header.num_groups = static_cast<uint32_t>(group_preds.size());
  header.promote_threshold = opts.promote_threshold;
  header.term_count = dict.size();
  header.triple_count = store.size();
  header.dict_offset = dict_off;
  header.dict_size = dict_buf.size();
  header.checksum = sum.Finish();
  header.file_size = file_size;
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.flush();
  if (!out) return Status::Internal("short write while saving snapshot");

  SnapshotReport report;
  report.terms = dict.size();
  report.triples = store.size();
  report.shards = num_shards;
  report.groups = group_preds.size();
  report.bytes = file_size;
  return report;
}

StatusOr<SnapshotReport> LoadStoreSnapshot(const std::string& path,
                                           Dictionary* dict,
                                           TripleStore* store,
                                           const SnapshotLoadOptions& options) {
  if (!dict->empty() || !store->empty()) {
    return Status::InvalidArgument(
        "snapshot load requires an empty dictionary and store");
  }
  SOFYA_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                         MappedFile::Open(path));
  const uint8_t* base = file->data();
  const size_t size = file->size();
  if (size < kHeaderSize) {
    return Status::ParseError("snapshot truncated: no header");
  }
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a snapshot file (bad magic)");
  }
  if (header.version != kVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(header.version));
  }
  if (header.file_size != size) {
    return Status::ParseError("snapshot truncated or padded: header claims " +
                              std::to_string(header.file_size) +
                              " bytes, file has " + std::to_string(size));
  }
  if (options.verify_checksum) {
    Checksummer sum;
    sum.Update(base + kHeaderSize, size - kHeaderSize);
    if (sum.Finish() != header.checksum) {
      return Status::ParseError("snapshot payload checksum mismatch");
    }
  }

  const uint64_t num_shards =
      static_cast<uint64_t>(header.num_hash_shards) +
      static_cast<uint64_t>(header.num_groups) * header.split_factor;
  if (header.num_hash_shards == 0 || header.split_factor == 0 ||
      num_shards > (1u << 20)) {
    return Status::ParseError("snapshot shard geometry out of range");
  }
  const uint64_t group_table_off = kHeaderSize;
  const uint64_t shard_table_off =
      group_table_off + header.num_groups * sizeof(uint64_t);
  const uint64_t tables_end = shard_table_off + num_shards * sizeof(ShardEntry);
  if (tables_end > size || header.dict_offset < tables_end ||
      header.dict_offset + header.dict_size > size) {
    return Status::ParseError("snapshot tables exceed file bounds");
  }

  // Dictionary: rebuild eagerly, terms in id order (ids are dense from 1 in
  // interning order, so re-interning reproduces them exactly).
  dict->Reserve(header.term_count);
  {
    const uint8_t* cur = base + header.dict_offset;
    const uint8_t* end = cur + header.dict_size;
    for (uint64_t id = 1; id <= header.term_count; ++id) {
      if (static_cast<size_t>(end - cur) < sizeof(TermRecord)) {
        return Status::ParseError("snapshot dictionary truncated");
      }
      TermRecord rec;
      std::memcpy(&rec, cur, sizeof(rec));
      cur += sizeof(rec);
      const uint64_t body = static_cast<uint64_t>(rec.lexical_len) +
                            rec.datatype_len + rec.language_len;
      if (static_cast<uint64_t>(end - cur) < body) {
        return Status::ParseError("snapshot dictionary truncated");
      }
      std::string lexical(reinterpret_cast<const char*>(cur),
                          rec.lexical_len);
      cur += rec.lexical_len;
      std::string datatype(reinterpret_cast<const char*>(cur),
                           rec.datatype_len);
      cur += rec.datatype_len;
      std::string language(reinterpret_cast<const char*>(cur),
                           rec.language_len);
      cur += rec.language_len;
      Term term;
      if (rec.kind == static_cast<uint8_t>(TermKind::kIri)) {
        if (!datatype.empty() || !language.empty()) {
          return Status::ParseError("snapshot IRI with datatype/language");
        }
        term = Term::Iri(std::move(lexical));
      } else if (rec.kind == static_cast<uint8_t>(TermKind::kLiteral)) {
        if (!datatype.empty() && !language.empty()) {
          return Status::ParseError(
              "snapshot literal with both datatype and language");
        }
        term = !datatype.empty()
                   ? Term::TypedLiteral(std::move(lexical), std::move(datatype))
                   : (!language.empty()
                          ? Term::LangLiteral(std::move(lexical),
                                              std::move(language))
                          : Term::Literal(std::move(lexical)));
      } else {
        return Status::ParseError("snapshot term has unknown kind");
      }
      const TermId got = dict->InternNew(std::move(term));
      if (got != id) {
        return Status::ParseError("snapshot dictionary ids not dense");
      }
    }
  }

  // Store: attach shard segments zero-copy.
  TripleStore::MappedLayout layout;
  layout.options.num_hash_shards = header.num_hash_shards;
  layout.options.promote_threshold = header.promote_threshold;
  layout.options.split_factor = header.split_factor;
  layout.keepalive = file;
  layout.group_preds.reserve(header.num_groups);
  for (uint32_t gi = 0; gi < header.num_groups; ++gi) {
    uint64_t pred;
    std::memcpy(&pred, base + group_table_off + gi * sizeof(uint64_t),
                sizeof(pred));
    if (pred == kNullTermId || pred > header.term_count) {
      return Status::ParseError("snapshot promoted predicate id out of range");
    }
    layout.group_preds.push_back(static_cast<TermId>(pred));
  }
  uint64_t total = 0;
  layout.shards.reserve(num_shards);
  for (uint64_t i = 0; i < num_shards; ++i) {
    ShardEntry entry;
    std::memcpy(&entry, base + shard_table_off + i * sizeof(ShardEntry),
                sizeof(entry));
    const uint64_t bytes = entry.count * sizeof(Triple);
    for (uint64_t off : {entry.spo_off, entry.pos_off, entry.osp_off}) {
      if (off % 8 != 0 || off < tables_end || off + bytes > size) {
        return Status::ParseError("snapshot shard segment exceeds file bounds");
      }
    }
    TripleStore::MappedShardSegments seg;
    seg.spo = {reinterpret_cast<const Triple*>(base + entry.spo_off),
               entry.count};
    seg.pos = {reinterpret_cast<const Triple*>(base + entry.pos_off),
               entry.count};
    seg.osp = {reinterpret_cast<const Triple*>(base + entry.osp_off),
               entry.count};
    layout.shards.push_back(seg);
    total += entry.count;
  }
  if (total != header.triple_count) {
    return Status::ParseError("snapshot shard counts disagree with header");
  }
  SOFYA_RETURN_IF_ERROR(store->AttachMapped(std::move(layout)));

  SnapshotReport report;
  report.terms = header.term_count;
  report.triples = header.triple_count;
  report.shards = num_shards;
  report.groups = header.num_groups;
  report.bytes = size;
  return report;
}

bool LooksLikeSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8];
  if (!in.read(magic, sizeof(magic))) return false;
  return std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace sofya
