// In-memory dictionary-encoded triple store with three orderings.
//
// Design (mini-hexastore): a hash set gives O(1) membership and dedup; three
// sorted index vectors — SPO, POS, OSP — give contiguous ranges for every
// bound-prefix pattern. Indexes are rebuilt lazily after writes (bulk-load
// friendly: N inserts + first query costs one sort, like an LSM flush).
//
// Every access pattern SOFYA's samplers need maps to a contiguous range:
//   (s ? ?) (s p ?)          -> SPO
//   (? p ?) (? p o)          -> POS
//   (? ? o) (s ? o)          -> OSP
//   (s p o)                  -> hash set
//   (? ? ?)                  -> SPO full scan

#ifndef SOFYA_RDF_TRIPLE_STORE_H_
#define SOFYA_RDF_TRIPLE_STORE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/triple.h"

namespace sofya {

/// Aggregate statistics for one predicate, used for candidate ranking and
/// inverse-relation decisions (AMIE-style functionality).
struct PredicateStats {
  size_t facts = 0;              ///< Number of triples with this predicate.
  size_t distinct_subjects = 0;  ///< |{s : p(s,o)}|
  size_t distinct_objects = 0;   ///< |{o : p(s,o)}|

  /// fun(p) = #distinct subjects / #facts; 1.0 means p is a function of s.
  double functionality() const {
    return facts == 0 ? 0.0
                      : static_cast<double>(distinct_subjects) /
                            static_cast<double>(facts);
  }
  /// fun(p^-1).
  double inverse_functionality() const {
    return facts == 0 ? 0.0
                      : static_cast<double>(distinct_objects) /
                            static_cast<double>(facts);
  }
};

/// Whole-store aggregate statistics: the planner's fallback numbers for
/// clauses whose predicate is a variable (per-predicate stats don't apply).
struct StoreStats {
  size_t triples = 0;              ///< Total facts.
  size_t distinct_subjects = 0;    ///< |{s : ∃p,o. 〈s,p,o〉}|
  size_t distinct_predicates = 0;  ///< |{p}|
  size_t distinct_objects = 0;     ///< |{o}|
};

/// The store. Writes invalidate indexes; the first subsequent read re-sorts.
///
/// Thread safety: concurrent const reads are safe, including the first read
/// after a write (the lazy re-sort and the predicate-stats memo are
/// internally synchronized). Writes (Insert/Erase) must not overlap with
/// reads or other writes — the alignment pipeline treats a dataset as
/// immutable while queries are in flight, which is also what a remote
/// endpoint would guarantee per snapshot.
class TripleStore {
 public:
  TripleStore() = default;

  // Movable (KnowledgeBase is movable); the caller must not move a store
  // that other threads are reading.
  TripleStore(TripleStore&& other) noexcept { MoveFrom(std::move(other)); }
  TripleStore& operator=(TripleStore&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Inserts a triple. Returns true iff it was not already present.
  bool Insert(const Triple& t);

  /// Inserts 〈s,p,o〉 by ids.
  bool Insert(TermId s, TermId p, TermId o) { return Insert(Triple(s, p, o)); }

  /// Removes a triple. Returns true iff it was present.
  bool Erase(const Triple& t);

  /// True iff the exact triple is present. O(1).
  bool Contains(const Triple& t) const { return set_.count(t) > 0; }
  bool Contains(TermId s, TermId p, TermId o) const {
    return Contains(Triple(s, p, o));
  }

  /// Number of triples.
  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  /// All triples matching `pattern`, materialized in index order.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Number of matches without materializing.
  size_t CountMatches(const TriplePattern& pattern) const;

  /// Streams matches to `fn`; stop early by returning false from `fn`.
  void ForEachMatch(const TriplePattern& pattern,
                    const std::function<bool(const Triple&)>& fn) const;

  /// Contiguous index range covering `pattern` — the zero-copy substrate for
  /// streaming query pipelines. The span is filtered by the chosen index's
  /// bound *prefix* only; for patterns whose bound positions exceed the
  /// prefix (e.g. fully-bound 〈s,p,o〉 routed through OSP) callers must
  /// re-check residual positions, as ForEachMatch does. Valid until the next
  /// write to the store.
  std::span<const Triple> MatchRange(const TriplePattern& pattern) const {
    return Range(pattern);
  }

  /// Distinct objects o with 〈s,p,o〉 in the store.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  /// Distinct subjects s with 〈s,p,o〉 in the store.
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// Distinct subjects of predicate `p` (in ascending id order).
  std::vector<TermId> SubjectsOf(TermId p) const;

  /// All distinct predicates present (ascending id order).
  std::vector<TermId> Predicates() const;

  /// Statistics for predicate `p` (zeroes if absent). Memoized; entries are
  /// keyed off mutation_epoch(), so a stale value can never survive a write.
  PredicateStats StatsFor(TermId p) const;

  /// Whole-store aggregates (total triples, distinct s/p/o), memoized per
  /// mutation_epoch() like StatsFor. One O(n) index walk per epoch.
  StoreStats GlobalStats() const;

  /// Monotonic write version: bumped on every successful Insert/Erase.
  /// Derived artifacts (predicate stats, global stats, compiled query plans)
  /// are keyed off this, so "same epoch" means "same data, same plan".
  uint64_t mutation_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Forces index (re)construction now; useful before timed sections.
  void EnsureIndexed() const { EnsureSorted(); }

 private:
  // Orderings for the three index vectors.
  struct SpoLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.subject != b.subject) return a.subject < b.subject;
      if (a.predicate != b.predicate) return a.predicate < b.predicate;
      return a.object < b.object;
    }
  };
  struct PosLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.predicate != b.predicate) return a.predicate < b.predicate;
      if (a.object != b.object) return a.object < b.object;
      return a.subject < b.subject;
    }
  };
  struct OspLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.object != b.object) return a.object < b.object;
      if (a.subject != b.subject) return a.subject < b.subject;
      return a.predicate < b.predicate;
    }
  };

  void EnsureSorted() const;

  /// Contiguous index range for `pattern` (after EnsureSorted).
  std::span<const Triple> Range(const TriplePattern& pattern) const;

  void MoveFrom(TripleStore&& other) {
    std::scoped_lock lock(lazy_mu_, other.lazy_mu_);
    set_ = std::move(other.set_);
    spo_ = std::move(other.spo_);
    pos_ = std::move(other.pos_);
    osp_ = std::move(other.osp_);
    stats_cache_ = std::move(other.stats_cache_);
    stats_cache_epoch_ = other.stats_cache_epoch_;
    global_stats_ = other.global_stats_;
    global_stats_epoch_ = other.global_stats_epoch_;
    global_stats_valid_ = other.global_stats_valid_;
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    dirty_.store(other.dirty_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  std::unordered_set<Triple, TripleHash> set_;

  /// Guards the lazy re-sort and the stats memos so the first read after a
  /// write is safe from any number of threads; steady-state reads only do
  /// one relaxed-acquire load on `dirty_`.
  mutable std::mutex lazy_mu_;
  mutable std::atomic<bool> dirty_{false};
  std::atomic<uint64_t> epoch_{0};
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  /// Predicate-stats memo, valid only while stats_cache_epoch_ matches
  /// epoch_: the first StatsFor after a write drops every entry, so the
  /// write path itself never touches the memo. Guarded by lazy_mu_.
  mutable std::unordered_map<TermId, PredicateStats> stats_cache_;
  mutable uint64_t stats_cache_epoch_ = 0;
  mutable StoreStats global_stats_;
  mutable uint64_t global_stats_epoch_ = 0;
  mutable bool global_stats_valid_ = false;
};

}  // namespace sofya

#endif  // SOFYA_RDF_TRIPLE_STORE_H_
