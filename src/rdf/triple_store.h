// In-memory dictionary-encoded triple store, sharded by predicate.
//
// Design: the store is a collection of shards, each a mini-hexastore — three
// lazily re-sorted index vectors (SPO, POS, OSP) giving contiguous ranges for
// every bound-prefix pattern — plus one global hash set for O(1) membership
// and dedup. Predicates are routed to a fixed ring of hash shards; a
// predicate whose fact count crosses `promote_threshold` is promoted to its
// own dedicated group of `split_factor` sub-shards partitioned by subject
// hash, so scans of a dominant predicate can fan out across cores and a
// write to one predicate re-sorts (and re-counts) only its own shard.
//
// Every access pattern SOFYA's samplers need maps to per-shard contiguous
// ranges:
//   (s ? ?) (s p ?) (s p o)  -> SPO prefix
//   (? p ?) (? p o)          -> POS prefix
//   (? ? o) (s ? o)          -> OSP prefix
//   (? ? ?)                  -> SPO full scan, shard-concatenated
// A bound predicate touches exactly one shard (or, when promoted, its
// sub-shard group — one sub-shard if the subject is bound too); an unbound
// predicate walks all shards in deterministic shard order.
//
// Shards can be *mapped*: backed by read-only spans into an mmap'd snapshot
// file (src/rdf/store_snapshot.h) instead of owned vectors. Mapped shards
// are pre-sorted, so queries are zero-copy straight off the page cache; the
// first write thaws the store back into owned vectors.

#ifndef SOFYA_RDF_TRIPLE_STORE_H_
#define SOFYA_RDF_TRIPLE_STORE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/triple.h"
#include "util/status.h"

namespace sofya {

/// Aggregate statistics for one predicate, used for candidate ranking and
/// inverse-relation decisions (AMIE-style functionality).
struct PredicateStats {
  size_t facts = 0;              ///< Number of triples with this predicate.
  size_t distinct_subjects = 0;  ///< |{s : p(s,o)}|
  size_t distinct_objects = 0;   ///< |{o : p(s,o)}|

  /// fun(p) = #distinct subjects / #facts; 1.0 means p is a function of s.
  double functionality() const {
    return facts == 0 ? 0.0
                      : static_cast<double>(distinct_subjects) /
                            static_cast<double>(facts);
  }
  /// fun(p^-1).
  double inverse_functionality() const {
    return facts == 0 ? 0.0
                      : static_cast<double>(distinct_objects) /
                            static_cast<double>(facts);
  }
};

/// Small equi-depth histogram over one column (subjects or objects) of one
/// predicate's facts. Bucket boundaries are chosen so every bucket holds
/// roughly the same number of *facts* (never splitting one term across
/// buckets), so a frequency-skewed term surfaces as a bucket with few
/// distinct terms and a high rows/distinct ratio. The planner uses this to
/// estimate join fan-out under skew: when a clause position is joined to an
/// upstream binding, values arrive weighted by their frequency, so the
/// expected fan-out is the frequency-weighted bucket mean rather than the
/// uniform facts/distinct average.
struct TermHistogram {
  /// Inclusive upper term-id bound of each bucket (ascending).
  std::vector<TermId> upper;
  /// Facts in each bucket.
  std::vector<size_t> rows;
  /// Distinct terms in each bucket.
  std::vector<size_t> distinct;
  /// Smallest term id in bucket 0 (histogram range lower bound).
  TermId lower = 0;

  bool empty() const { return upper.empty(); }
  size_t total_rows() const {
    size_t n = 0;
    for (size_t r : rows) n += r;
    return n;
  }

  /// Average facts per term in the bucket holding `t`; 0 when `t` lies
  /// outside the histogram's range (the term provably has no facts).
  double EstimateEq(TermId t) const;

  /// E[facts(v)] for a term v drawn weighted by its fact frequency —
  /// Σ rows_b²/distinct_b over total rows. Equals facts/distinct under a
  /// uniform distribution and grows with skew (Cauchy–Schwarz), so it is
  /// the right per-binding fan-out for join estimation. Returns 0 when
  /// empty.
  double ExpectedFanout() const;
};

/// Per-predicate histograms over both join columns.
struct PredicateHistograms {
  TermHistogram subjects;
  TermHistogram objects;
};

/// Whole-store aggregate statistics: the planner's fallback numbers for
/// clauses whose predicate is a variable (per-predicate stats don't apply).
struct StoreStats {
  size_t triples = 0;              ///< Total facts.
  size_t distinct_subjects = 0;    ///< |{s : ∃p,o. 〈s,p,o〉}|
  size_t distinct_predicates = 0;  ///< |{p}|
  size_t distinct_objects = 0;     ///< |{o}|
};

/// Sharding knobs. The defaults suit alignment workloads (a few hot
/// predicates over a long tail); tests shrink them to exercise promotion.
struct StoreOptions {
  /// Fixed ring of shards the predicate tail hashes onto.
  size_t num_hash_shards = 8;
  /// Fact count beyond which a predicate gets its own sub-shard group.
  /// 0 disables promotion (every predicate stays on the hash ring).
  size_t promote_threshold = 65536;
  /// Sub-shards per promoted predicate, partitioned by subject hash.
  size_t split_factor = 8;

  /// Bucket count for the per-term equi-depth histograms (HistogramFor).
  /// Small on purpose: the planner only needs coarse skew signal, and a
  /// histogram rebuild is a full walk of one predicate's facts.
  size_t histogram_buckets = 32;
};

/// An ordered list of contiguous index ranges covering one pattern — the
/// zero-copy substrate for streaming query pipelines. One span per shard
/// touched (empty shards are skipped); spans are filtered by the chosen
/// index's bound *prefix* only, exactly like the old single-range
/// MatchRange, and concatenation order is deterministic (shard order).
/// Inline storage for the common case, so building one never allocates
/// unless a pattern with an unbound predicate crosses many shards.
/// Spans are valid until the next write to the store.
class MatchView {
 public:
  static constexpr size_t kInlineSpans = 8;

  size_t num_spans() const { return n_; }
  std::span<const Triple> span(size_t i) const {
    return i < kInlineSpans ? inline_[i] : overflow_[i - kInlineSpans];
  }
  /// Total triples across all spans.
  size_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Appends a span; empty spans are dropped so span(i) is never empty.
  void Append(std::span<const Triple> s) {
    if (s.empty()) return;
    if (n_ < kInlineSpans) {
      inline_[n_] = s;
    } else {
      overflow_.push_back(s);
    }
    ++n_;
    total_ += s.size();
  }

 private:
  std::array<std::span<const Triple>, kInlineSpans> inline_{};
  std::vector<std::span<const Triple>> overflow_;
  size_t n_ = 0;
  size_t total_ = 0;
};

/// The store. Writes invalidate the touched shard; the first subsequent
/// read re-sorts that shard only.
///
/// Thread safety: concurrent const reads are safe, including the first read
/// after a write (per-shard lazy re-sorts and every stats memo are
/// internally synchronized). Writes (Insert/Erase/bulk load/AttachMapped)
/// must not overlap with reads or other writes — the alignment pipeline
/// treats a dataset as immutable while queries are in flight, which is also
/// what a remote endpoint would guarantee per snapshot.
class TripleStore {
 public:
  TripleStore() : TripleStore(StoreOptions()) {}
  explicit TripleStore(const StoreOptions& options);

  // Movable (KnowledgeBase is movable); the caller must not move a store
  // that other threads are reading.
  TripleStore(TripleStore&& other) noexcept { MoveFrom(std::move(other)); }
  TripleStore& operator=(TripleStore&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Inserts a triple. Returns true iff it was not already present.
  bool Insert(const Triple& t);

  /// Inserts 〈s,p,o〉 by ids.
  bool Insert(TermId s, TermId p, TermId o) { return Insert(Triple(s, p, o)); }

  /// Removes a triple. Returns true iff it was present.
  bool Erase(const Triple& t);

  /// True iff the exact triple is present. O(1) owned; O(log n) mapped.
  bool Contains(const Triple& t) const;
  bool Contains(TermId s, TermId p, TermId o) const {
    return Contains(Triple(s, p, o));
  }

  /// Number of triples.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// All triples matching `pattern`, materialized in index order.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Number of matches without materializing.
  size_t CountMatches(const TriplePattern& pattern) const;

  /// Streams matches to `fn` (signature bool(const Triple&)); stop early by
  /// returning false. A template so the engine's per-row inner loop pays no
  /// std::function allocation or indirect-call overhead.
  template <typename Fn>
  void ForEachMatch(const TriplePattern& pattern, Fn&& fn) const {
    const auto [lo, hi] = ShardBounds(pattern);
    for (uint32_t i = lo; i < hi; ++i) {
      for (const Triple& t : PreparedShardRange(i, pattern)) {
        if (!pattern.Matches(t)) continue;
        if (!fn(t)) return;
      }
    }
  }

  /// The per-shard index ranges covering `pattern`, in shard order. This is
  /// the sharded successor of the old single-span MatchRange: concatenating
  /// the spans yields the full (prefix-filtered) match sequence. Spans are
  /// valid until the next write to the store.
  MatchView MatchSpans(const TriplePattern& pattern) const;

  /// Distinct objects o with 〈s,p,o〉 in the store.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  /// Distinct subjects s with 〈s,p,o〉 in the store.
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// Distinct subjects of predicate `p` (in ascending id order).
  std::vector<TermId> SubjectsOf(TermId p) const;

  /// All distinct predicates present (ascending id order).
  std::vector<TermId> Predicates() const;

  /// Statistics for predicate `p` (zeroes if absent). Memoized per shard and
  /// keyed off that shard's epoch, so a write to one predicate invalidates
  /// only its own shard's entries — and a stale value still can never
  /// survive a write.
  PredicateStats StatsFor(TermId p) const;

  /// Equi-depth per-term histograms over predicate `p`'s subject and object
  /// columns (empty histograms if `p` is absent). Memoized like StatsFor:
  /// the entry is keyed off the owning shard's epoch (sum of sub-shard
  /// epochs for a promoted group), so a write to one shard invalidates only
  /// the histograms living there and an untouched predicate keeps its
  /// entry across writes elsewhere.
  PredicateHistograms HistogramFor(TermId p) const;

  /// Whole-store aggregates (total triples, distinct s/p/o). Distinct
  /// counts merge per-shard sorted aggregates that are memoized per shard
  /// epoch, so after a write only the touched shard recomputes; the merged
  /// result is memoized per mutation_epoch(). Values are identical to a
  /// global-index walk.
  StoreStats GlobalStats() const;

  /// Monotonic write version: bumped on every successful Insert/Erase (once
  /// per bulk-load scope, not per triple — see BulkLoadScope). Derived
  /// artifacts (predicate stats, global stats, compiled query plans) are
  /// keyed off this, so "same epoch" means "same data, same plan".
  uint64_t mutation_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Forces index (re)construction on every shard; useful before timed
  /// sections.
  void EnsureIndexed() const;

  // --- Bulk load -----------------------------------------------------------

  /// Begins a bulk-load scope: `expected` reserves hash capacity up front,
  /// per-insert epoch bumps and promotion checks are suppressed, and
  /// EndBulkLoad() bumps the epoch once (if anything changed) and runs one
  /// promotion pass. Scopes nest; only the outermost End finishes the load.
  void BeginBulkLoad(size_t expected = 0);
  void EndBulkLoad();

  /// RAII wrapper for Begin/EndBulkLoad.
  class BulkLoadScope {
   public:
    explicit BulkLoadScope(TripleStore* store, size_t expected = 0)
        : store_(store) {
      store_->BeginBulkLoad(expected);
    }
    ~BulkLoadScope() { store_->EndBulkLoad(); }
    BulkLoadScope(const BulkLoadScope&) = delete;
    BulkLoadScope& operator=(const BulkLoadScope&) = delete;

   private:
    TripleStore* store_;
  };

  /// Reserves hash-set capacity for `n` triples.
  void Reserve(size_t n);

  // --- Snapshot plumbing (src/rdf/store_snapshot.h) ------------------------

  /// One shard's three sorted segments inside a mapped snapshot.
  struct MappedShardSegments {
    std::span<const Triple> spo;
    std::span<const Triple> pos;
    std::span<const Triple> osp;
  };

  /// A full mapped layout: options, promoted predicates in group order, and
  /// one segment triplet per shard (hash shards first, then each group's
  /// sub-shards). `keepalive` pins the mapping for the store's lifetime.
  struct MappedLayout {
    StoreOptions options;
    std::vector<TermId> group_preds;
    std::vector<MappedShardSegments> shards;
    std::shared_ptr<const void> keepalive;
  };

  /// Replaces this (empty) store's contents with a mapped snapshot layout.
  /// Segments must be sorted (the snapshot writer guarantees it; the file
  /// checksum guards integrity). Reads are zero-copy; the first write thaws.
  Status AttachMapped(MappedLayout layout);

  /// True while shards are backed by a mapped snapshot (no write yet).
  bool is_mapped() const { return mapped_; }

  // --- Introspection (tests, benches, snapshot writer) ---------------------

  const StoreOptions& options() const { return options_; }

  /// Total shard count: num_hash_shards + promoted groups × split_factor.
  size_t num_shards() const { return shards_.size(); }

  /// Promoted predicates, in promotion order (= group order).
  std::vector<TermId> PromotedPredicates() const;

  /// Shard `i`'s sorted segments (after forcing that shard's index build).
  /// Used by the snapshot writer; spans valid until the next write.
  MappedShardSegments ShardSegments(size_t i) const;

  /// Number of per-shard / merged stats recomputations since construction —
  /// a diagnostic for "writes to one predicate no longer invalidate
  /// everything else" regression tests.
  uint64_t stats_recomputes() const {
    return stats_recomputes_.load(std::memory_order_relaxed);
  }

  /// Number of histogram rebuilds since construction — the diagnostic the
  /// histogram epoch-invalidation tests pin, mirroring stats_recomputes().
  uint64_t histogram_recomputes() const {
    return histogram_recomputes_.load(std::memory_order_relaxed);
  }

 private:
  // Orderings for the three index vectors.
  struct SpoLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.subject != b.subject) return a.subject < b.subject;
      if (a.predicate != b.predicate) return a.predicate < b.predicate;
      return a.object < b.object;
    }
  };
  struct PosLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.predicate != b.predicate) return a.predicate < b.predicate;
      if (a.object != b.object) return a.object < b.object;
      return a.subject < b.subject;
    }
  };
  struct OspLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.object != b.object) return a.object < b.object;
      if (a.subject != b.subject) return a.subject < b.subject;
      return a.predicate < b.predicate;
    }
  };

  /// One shard: owned append vectors (or mapped spans), lazy-sort state, its
  /// own epoch, and epoch-keyed memos. Heap-allocated so the shard list can
  /// grow on promotion without moving mutexes/atomics.
  struct Shard {
    // Owned storage; empty while `mapped`. Mutable (with the views below)
    // because the lazy re-sort runs on the const read path.
    mutable std::vector<Triple> spo, pos, osp;
    // Read views: the owned vectors after the last sort, or mmap segments.
    // Refreshed under `mu` before `dirty` is released, so any reader that
    // observed dirty == false sees current views.
    mutable std::span<const Triple> spo_v, pos_v, osp_v;
    bool mapped = false;

    mutable std::mutex mu;
    mutable std::atomic<bool> dirty{false};
    /// Per-shard write version; memos below are keyed off it.
    std::atomic<uint64_t> epoch{0};

    /// Predicate-stats memo for predicates living in this shard. Guarded by
    /// `mu`; valid only while `stats_epoch` matches `epoch`.
    mutable std::unordered_map<TermId, PredicateStats> stats;
    mutable uint64_t stats_epoch = 0;

    /// Sorted distinct subject/object lists for GlobalStats merging.
    /// Guarded by `mu`; valid only while `agg_epoch` matches `epoch`.
    mutable std::vector<TermId> agg_subjects, agg_objects;
    mutable uint64_t agg_epoch = 0;
    mutable bool agg_valid = false;
  };

  /// A promoted predicate's dedicated sub-shard group.
  struct PredGroup {
    TermId pred = kNullTermId;
    uint32_t first_shard = 0;  // Index into shards_.
    uint32_t split = 1;

    /// Merged PredicateStats memo, keyed by the sum of sub-shard epochs
    /// (strictly increasing under writes). Guarded by `mu`.
    mutable std::mutex mu;
    mutable PredicateStats memo;
    mutable uint64_t memo_key = 0;
    mutable bool memo_valid = false;
  };

  /// Routing entry for one predicate present (now or previously) in the
  /// store. `group < 0` means the predicate lives on the hash ring.
  struct PredInfo {
    size_t facts = 0;
    int32_t group = -1;
  };

  /// Deterministic id mixer for routing (predicate → hash shard, subject →
  /// sub-shard). Fixed across platforms so a snapshot written elsewhere
  /// routes identically.
  static uint32_t HashId(TermId x) {
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return x;
  }

  /// The shard an exact triple routes to (for writes / Contains).
  uint32_t ShardFor(const Triple& t) const;

  /// Half-open shard interval [lo, hi) a pattern must visit.
  std::pair<uint32_t, uint32_t> ShardBounds(const TriplePattern& p) const;

  /// Shard i's contiguous range for `pattern`, after ensuring it is sorted.
  std::span<const Triple> PreparedShardRange(uint32_t i,
                                             const TriplePattern& p) const;
  /// Binary-searched range on an already-sorted shard's views.
  std::span<const Triple> ShardRange(const Shard& sh,
                                     const TriplePattern& p) const;

  void EnsureShardSorted(const Shard& sh) const;

  /// Appends `t` to shard `i`'s vectors and marks it dirty.
  void AppendToShard(uint32_t i, const Triple& t);

  /// Moves predicate `p` out of its hash shard into a fresh dedicated
  /// group. Called from Insert / EndBulkLoad when `facts` crosses the
  /// threshold.
  void Promote(TermId p, PredInfo& info);

  /// Materializes mapped shards into owned vectors and rebuilds the hash
  /// set; called on the first write after AttachMapped.
  void Thaw();

  /// Per-shard stats for predicate `p` inside shard `i` (memoized).
  PredicateStats ShardStatsFor(uint32_t i, TermId p) const;

  /// k-way merged stats for a promoted group (memoized on the group).
  PredicateStats GroupStatsFor(const PredGroup& g) const;

  void MoveFrom(TripleStore&& other);

  StoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<PredGroup>> groups_;
  /// Routing map over every predicate ever inserted. Read-only during
  /// queries; mutated only by writes (the store's write contract).
  std::unordered_map<TermId, PredInfo> pred_info_;
  size_t distinct_preds_ = 0;  // |{p : facts(p) > 0}|

  std::unordered_set<Triple, TripleHash> set_;
  size_t size_ = 0;
  bool mapped_ = false;
  std::shared_ptr<const void> mapped_keepalive_;

  std::atomic<uint64_t> epoch_{0};
  /// Bulk-load state: nesting depth and whether the scope changed anything.
  size_t bulk_depth_ = 0;
  bool bulk_dirty_ = false;

  /// Guards the merged GlobalStats memo.
  mutable std::mutex global_mu_;
  mutable StoreStats global_stats_;
  mutable uint64_t global_stats_epoch_ = 0;
  mutable bool global_stats_valid_ = false;

  /// Histogram memo: per predicate, keyed by the owning shard's epoch (sum
  /// of sub-shard epochs for a group) — same invalidation granularity as
  /// the predicate-stats memo. Guarded by hist_mu_.
  struct HistEntry {
    uint64_t key = 0;
    PredicateHistograms hist;
  };
  mutable std::mutex hist_mu_;
  mutable std::unordered_map<TermId, HistEntry> hist_memo_;

  mutable std::atomic<uint64_t> stats_recomputes_{0};
  mutable std::atomic<uint64_t> histogram_recomputes_{0};
};

}  // namespace sofya

#endif  // SOFYA_RDF_TRIPLE_STORE_H_
