#include "rdf/term.h"

#include "util/string_util.h"

namespace sofya {

std::string Term::ToNTriples() const {
  if (is_iri()) {
    if (is_blank()) return lexical_;  // _:bN is written bare.
    return "<" + lexical_ + ">";
  }
  std::string out = "\"" + EscapeNTriples(lexical_) + "\"";
  if (!language_.empty()) {
    out += "@" + language_;
  } else if (!datatype_.empty()) {
    out += "^^<" + datatype_ + ">";
  }
  return out;
}

}  // namespace sofya
