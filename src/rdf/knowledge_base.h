// KnowledgeBase: a named (Dictionary, TripleStore) pair.
//
// One KnowledgeBase corresponds to one dataset behind one endpoint (the
// paper's K and K'). The dictionary is per-KB — ids are NOT comparable
// across KBs; cross-KB identity goes through sameAs links (sofya::sameas).

#ifndef SOFYA_RDF_KNOWLEDGE_BASE_H_
#define SOFYA_RDF_KNOWLEDGE_BASE_H_

#include <string>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/namespaces.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace sofya {

struct SnapshotReport;

/// A named RDF dataset: dictionary + indexed triple store.
class KnowledgeBase {
 public:
  /// Creates an empty KB. `name` is used in reports and query logs;
  /// `base_iri` prefixes locally minted IRIs (e.g. "http://kb1.sofya.org/").
  explicit KnowledgeBase(std::string name,
                         std::string base_iri = "")
      : name_(std::move(name)), base_iri_(std::move(base_iri)) {}

  // Movable, not copyable (stores can be large).
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  const std::string& name() const { return name_; }
  const std::string& base_iri() const { return base_iri_; }

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }
  TripleStore& store() { return store_; }
  const TripleStore& store() const { return store_; }

  /// Interns the three terms and inserts the triple. Returns true iff new.
  bool AddTriple(const Term& s, const Term& p, const Term& o) {
    return store_.Insert(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  }

  /// Adds 〈<s>, <p>, <o>〉 with all three terms IRIs relative to base_iri.
  bool AddFact(const std::string& s_local, const std::string& p_local,
               const std::string& o_local) {
    return AddTriple(Term::Iri(base_iri_ + s_local),
                     Term::Iri(base_iri_ + p_local),
                     Term::Iri(base_iri_ + o_local));
  }

  /// Adds 〈<s>, <p>, "literal"〉 with s/p relative to base_iri.
  bool AddLiteralFact(const std::string& s_local, const std::string& p_local,
                      const std::string& literal) {
    return AddTriple(Term::Iri(base_iri_ + s_local),
                     Term::Iri(base_iri_ + p_local), Term::Literal(literal));
  }

  /// Id of the relation IRI `local` under base_iri (kNullTermId if absent).
  TermId RelationId(const std::string& local) const {
    return dict_.LookupIri(base_iri_ + local);
  }

  /// Decodes and renders a triple for logs: "kb1:a kb1:p kb1:b".
  std::string RenderTriple(const Triple& t, const PrefixMap& prefixes) const;

  /// All distinct predicate ids in the store.
  std::vector<TermId> Relations() const { return store_.Predicates(); }

  /// Total number of facts.
  size_t size() const { return store_.size(); }

  /// Monotonic write version, derived from the store's own mutation epoch
  /// so *every* triple write counts — AddTriple/AddFact and direct store()
  /// writes alike, no MarkMutated() call required. Client-side caches
  /// (CachingEndpoint) compare epochs to drop stale entries automatically
  /// in time-sensitive-data scenarios. Reads race-free under the store's
  /// own contract: writes never run concurrently with queries.
  uint64_t data_epoch() const {
    return store_.mutation_epoch() + manual_epoch_;
  }

  /// Records a mutation the store cannot observe (e.g. dict()-only edits
  /// that change how existing ids render). Triple writes no longer need
  /// this — the store's epoch covers them.
  void MarkMutated() { ++manual_epoch_; }

  /// Writes this KB (dictionary + store) to a binary snapshot file
  /// (rdf/store_snapshot.h). Logically const.
  StatusOr<SnapshotReport> SaveSnapshot(const std::string& path) const;

  /// Loads a snapshot into this KB. Requires an empty dictionary and store;
  /// triple reads afterwards are zero-copy off the mmap'd file until the
  /// first write.
  StatusOr<SnapshotReport> LoadSnapshot(const std::string& path);

 private:
  std::string name_;
  std::string base_iri_;
  Dictionary dict_;
  TripleStore store_;
  uint64_t manual_epoch_ = 0;
};

}  // namespace sofya

#endif  // SOFYA_RDF_KNOWLEDGE_BASE_H_
