#include "rdf/dictionary.h"

#include "util/string_util.h"

namespace sofya {

TermId Dictionary::Intern(const Term& term) {
  {
    // Fast path: most interns are repeats; answer them under a shared lock.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const TermId next = static_cast<TermId>(terms_.size() + 1);
  // try_emplace doubles as the re-check: another writer may have interned
  // the term between the locks, in which case it returns the existing node.
  auto [it, inserted] = index_.try_emplace(term, next);
  if (!inserted) return it->second;
  terms_.push_back(&it->first);
  return next;
}

TermId Dictionary::InternNew(Term&& term) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const TermId next = static_cast<TermId>(terms_.size() + 1);
  // try_emplace leaves `term` untouched when the key already exists, so
  // the fallback path loses nothing.
  auto [it, inserted] = index_.try_emplace(std::move(term), next);
  if (!inserted) return it->second;
  terms_.push_back(&it->first);
  return next;
}

TermId Dictionary::Lookup(const Term& term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);
  return it == index_.end() ? kNullTermId : it->second;
}

const Term& Dictionary::Decode(TermId id) const {
  static const Term kInvalid = Term::Iri("urn:sofya:invalid-term-id");
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!ContainsLocked(id)) return kInvalid;
  // Map nodes never move or disappear: the reference outlives the lock.
  return *terms_[id - 1];
}

StatusOr<Term> Dictionary::TryDecode(TermId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!ContainsLocked(id)) {
    return Status::NotFound(StrFormat("term id %u not in dictionary (size %zu)",
                                      id, terms_.size()));
  }
  return *terms_[id - 1];
}

}  // namespace sofya
