#include "rdf/dictionary.h"

#include "util/string_util.h"

namespace sofya {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  const TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(term, id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kNullTermId : it->second;
}

const Term& Dictionary::Decode(TermId id) const {
  static const Term kInvalid = Term::Iri("urn:sofya:invalid-term-id");
  if (!Contains(id)) return kInvalid;
  return terms_[id - 1];
}

StatusOr<Term> Dictionary::TryDecode(TermId id) const {
  if (!Contains(id)) {
    return Status::NotFound(
        StrFormat("term id %u not in dictionary (size %zu)", id, size()));
  }
  return terms_[id - 1];
}

}  // namespace sofya
