#include "rdf/ntriples.h"

#include <cctype>
#include <sstream>

#include "util/string_util.h"

namespace sofya {

namespace {

void SkipSpace(std::string_view line, size_t* pos) {
  while (*pos < line.size() &&
         (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
}

bool IsBlankNodeChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

StatusOr<Term> ParseNTriplesTerm(std::string_view line, size_t* pos) {
  SkipSpace(line, pos);
  if (*pos >= line.size()) {
    return Status::ParseError("unexpected end of line while reading a term");
  }
  const char first = line[*pos];

  if (first == '<') {
    const size_t close = line.find('>', *pos + 1);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated IRI: missing '>'");
    }
    std::string iri(line.substr(*pos + 1, close - *pos - 1));
    if (iri.empty()) return Status::ParseError("empty IRI <>");
    *pos = close + 1;
    return Term::Iri(std::move(iri));
  }

  if (first == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Status::ParseError("malformed blank node: expected '_:'");
    }
    size_t end = *pos + 2;
    while (end < line.size() && IsBlankNodeChar(line[end])) ++end;
    if (end == *pos + 2) {
      return Status::ParseError("blank node with empty label");
    }
    std::string label(line.substr(*pos, end - *pos));
    *pos = end;
    return Term::Iri(std::move(label));
  }

  if (first == '"') {
    // Scan for the closing unescaped quote.
    size_t i = *pos + 1;
    bool escaped = false;
    while (i < line.size()) {
      if (escaped) {
        escaped = false;
      } else if (line[i] == '\\') {
        escaped = true;
      } else if (line[i] == '"') {
        break;
      }
      ++i;
    }
    if (i >= line.size()) {
      return Status::ParseError("unterminated literal: missing closing '\"'");
    }
    std::string lexical =
        UnescapeNTriples(line.substr(*pos + 1, i - *pos - 1));
    *pos = i + 1;
    // Optional suffix: @lang or ^^<datatype>.
    if (*pos < line.size() && line[*pos] == '@') {
      size_t end = *pos + 1;
      while (end < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[end])) ||
              line[end] == '-')) {
        ++end;
      }
      if (end == *pos + 1) {
        return Status::ParseError("empty language tag after '@'");
      }
      std::string lang(line.substr(*pos + 1, end - *pos - 1));
      *pos = end;
      return Term::LangLiteral(std::move(lexical), std::move(lang));
    }
    if (*pos + 1 < line.size() && line[*pos] == '^' && line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        return Status::ParseError("expected <datatype> after '^^'");
      }
      const size_t close = line.find('>', *pos + 1);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      std::string dt(line.substr(*pos + 1, close - *pos - 1));
      *pos = close + 1;
      return Term::TypedLiteral(std::move(lexical), std::move(dt));
    }
    return Term::Literal(std::move(lexical));
  }

  return Status::ParseError(
      StrFormat("unexpected character '%c' at column %zu", first, *pos));
}

Status ParseNTriplesLine(std::string_view line, Term* s, Term* p, Term* o) {
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::NotFound("blank or comment line");
  }
  size_t pos = 0;

  auto subject = ParseNTriplesTerm(trimmed, &pos);
  if (!subject.ok()) return subject.status().WithContext("subject");
  if (subject->is_literal()) {
    return Status::ParseError("subject must not be a literal");
  }

  auto predicate = ParseNTriplesTerm(trimmed, &pos);
  if (!predicate.ok()) return predicate.status().WithContext("predicate");
  if (!predicate->is_iri() || predicate->is_blank()) {
    return Status::ParseError("predicate must be an IRI");
  }

  auto object = ParseNTriplesTerm(trimmed, &pos);
  if (!object.ok()) return object.status().WithContext("object");

  SkipSpace(trimmed, &pos);
  if (pos >= trimmed.size() || trimmed[pos] != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  ++pos;
  SkipSpace(trimmed, &pos);
  if (pos != trimmed.size()) {
    return Status::ParseError("trailing content after '.'");
  }

  *s = std::move(subject).value();
  *p = std::move(predicate).value();
  *o = std::move(object).value();
  return Status::OK();
}

StatusOr<NTriplesParseReport> ParseNTriples(std::istream& in,
                                            Dictionary* dict,
                                            TripleStore* store,
                                            size_t expected_triples) {
  NTriplesParseReport report;
  // Bulk-load scope: one epoch bump and one promotion pass for the whole
  // document, so derived state (stats memos, compiled plans) is invalidated
  // once instead of N times.
  TripleStore::BulkLoadScope bulk(store, expected_triples);
  std::string line;
  while (std::getline(in, line)) {
    ++report.lines_read;
    Term s, p, o;
    Status st = ParseNTriplesLine(line, &s, &p, &o);
    if (st.IsNotFound()) continue;  // Comment/blank line.
    if (!st.ok()) {
      return st.WithContext(StrFormat("line %zu", report.lines_read));
    }
    store->Insert(dict->Intern(s), dict->Intern(p), dict->Intern(o));
    ++report.triples_parsed;
  }
  return report;
}

StatusOr<NTriplesParseReport> ParseNTriplesString(std::string_view document,
                                                  Dictionary* dict,
                                                  TripleStore* store) {
  std::istringstream in{std::string(document)};
  return ParseNTriples(in, dict, store);
}

Status WriteNTriples(const TripleStore& store, const Dictionary& dict,
                     std::ostream& out) {
  Status result = Status::OK();
  store.ForEachMatch(TriplePattern(), [&](const Triple& t) {
    auto s = dict.TryDecode(t.subject);
    auto p = dict.TryDecode(t.predicate);
    auto o = dict.TryDecode(t.object);
    if (!s.ok() || !p.ok() || !o.ok()) {
      result = Status::Internal("triple references unknown term id");
      return false;
    }
    out << s->ToNTriples() << " " << p->ToNTriples() << " " << o->ToNTriples()
        << " .\n";
    return true;
  });
  return result;
}

StatusOr<std::string> WriteNTriplesString(const TripleStore& store,
                                          const Dictionary& dict) {
  std::ostringstream out;
  SOFYA_RETURN_IF_ERROR(WriteNTriples(store, dict, out));
  return out.str();
}

}  // namespace sofya
