// Prefix management: compact ("yago:wasBornIn") <-> full IRI forms.

#ifndef SOFYA_RDF_NAMESPACES_H_
#define SOFYA_RDF_NAMESPACES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace sofya {

/// A registry of prefix -> namespace-IRI bindings.
///
/// Longest-namespace match wins when compacting (as in SPARQL serializers).
class PrefixMap {
 public:
  PrefixMap() = default;

  /// Creates a map preloaded with rdf:, rdfs:, owl:, xsd: and the synthetic
  /// kb namespaces used throughout SOFYA's tests and examples.
  static PrefixMap WithDefaults();

  /// Binds `prefix` (without ':') to `ns_iri`. Rebinding a prefix replaces
  /// the old binding.
  void Bind(std::string prefix, std::string ns_iri);

  /// Number of bindings.
  size_t size() const { return by_prefix_.size(); }

  /// Expands "pfx:local" to the full IRI. Inputs without ':' or with an
  /// unknown prefix return InvalidArgument / NotFound.
  StatusOr<std::string> Expand(std::string_view curie) const;

  /// Compacts a full IRI to "pfx:local" using the longest bound namespace
  /// that prefixes it; returns the IRI unchanged when nothing matches.
  std::string Compact(std::string_view iri) const;

  /// The namespace bound to `prefix`, or NotFound.
  StatusOr<std::string> NamespaceOf(std::string_view prefix) const;

  /// All bindings as (prefix, namespace) pairs, sorted by prefix.
  std::vector<std::pair<std::string, std::string>> Bindings() const;

 private:
  std::unordered_map<std::string, std::string> by_prefix_;
};

/// Well-known namespace IRIs.
namespace ns {
inline constexpr std::string_view kRdf =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr std::string_view kRdfs = "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr std::string_view kOwl = "http://www.w3.org/2002/07/owl#";
inline constexpr std::string_view kXsd = "http://www.w3.org/2001/XMLSchema#";
/// owl:sameAs — the entity-equivalence predicate SOFYA consumes.
inline constexpr std::string_view kOwlSameAs =
    "http://www.w3.org/2002/07/owl#sameAs";
/// Synthetic KB namespaces produced by sofya::synth.
inline constexpr std::string_view kKb1 = "http://kb1.sofya.org/";
inline constexpr std::string_view kKb2 = "http://kb2.sofya.org/";
}  // namespace ns

}  // namespace sofya

#endif  // SOFYA_RDF_NAMESPACES_H_
