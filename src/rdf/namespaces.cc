#include "rdf/namespaces.h"

#include <algorithm>

#include "util/string_util.h"

namespace sofya {

PrefixMap PrefixMap::WithDefaults() {
  PrefixMap map;
  map.Bind("rdf", std::string(ns::kRdf));
  map.Bind("rdfs", std::string(ns::kRdfs));
  map.Bind("owl", std::string(ns::kOwl));
  map.Bind("xsd", std::string(ns::kXsd));
  map.Bind("kb1", std::string(ns::kKb1));
  map.Bind("kb2", std::string(ns::kKb2));
  return map;
}

void PrefixMap::Bind(std::string prefix, std::string ns_iri) {
  by_prefix_[std::move(prefix)] = std::move(ns_iri);
}

StatusOr<std::string> PrefixMap::Expand(std::string_view curie) const {
  const size_t colon = curie.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument(
        StrFormat("not a CURIE (no ':'): '%s'", std::string(curie).c_str()));
  }
  const std::string prefix(curie.substr(0, colon));
  auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) {
    return Status::NotFound(StrFormat("prefix '%s' not bound", prefix.c_str()));
  }
  return it->second + std::string(curie.substr(colon + 1));
}

std::string PrefixMap::Compact(std::string_view iri) const {
  const std::string* best_ns = nullptr;
  const std::string* best_prefix = nullptr;
  for (const auto& [prefix, ns_iri] : by_prefix_) {
    if (!StartsWith(iri, ns_iri)) continue;
    if (best_ns == nullptr || ns_iri.size() > best_ns->size()) {
      best_ns = &ns_iri;
      best_prefix = &prefix;
    }
  }
  if (best_ns == nullptr) return std::string(iri);
  return *best_prefix + ":" + std::string(iri.substr(best_ns->size()));
}

StatusOr<std::string> PrefixMap::NamespaceOf(std::string_view prefix) const {
  auto it = by_prefix_.find(std::string(prefix));
  if (it == by_prefix_.end()) {
    return Status::NotFound(
        StrFormat("prefix '%s' not bound", std::string(prefix).c_str()));
  }
  return it->second;
}

std::vector<std::pair<std::string, std::string>> PrefixMap::Bindings() const {
  std::vector<std::pair<std::string, std::string>> out(by_prefix_.begin(),
                                                       by_prefix_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sofya
