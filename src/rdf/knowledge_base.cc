#include "rdf/knowledge_base.h"

namespace sofya {

std::string KnowledgeBase::RenderTriple(const Triple& t,
                                        const PrefixMap& prefixes) const {
  auto render = [&](TermId id) -> std::string {
    if (!dict_.Contains(id)) return "?";
    const Term& term = dict_.Decode(id);
    if (term.is_iri()) return prefixes.Compact(term.lexical());
    return term.ToNTriples();
  };
  return render(t.subject) + " " + render(t.predicate) + " " +
         render(t.object);
}

}  // namespace sofya
