#include "rdf/knowledge_base.h"

#include "rdf/store_snapshot.h"

namespace sofya {

StatusOr<SnapshotReport> KnowledgeBase::SaveSnapshot(
    const std::string& path) const {
  return SaveStoreSnapshot(store_, dict_, path);
}

StatusOr<SnapshotReport> KnowledgeBase::LoadSnapshot(const std::string& path) {
  return LoadStoreSnapshot(path, &dict_, &store_);
}

std::string KnowledgeBase::RenderTriple(const Triple& t,
                                        const PrefixMap& prefixes) const {
  auto render = [&](TermId id) -> std::string {
    if (!dict_.Contains(id)) return "?";
    const Term& term = dict_.Decode(id);
    if (term.is_iri()) return prefixes.Compact(term.lexical());
    return term.ToNTriples();
  };
  return render(t.subject) + " " + render(t.predicate) + " " +
         render(t.object);
}

}  // namespace sofya
