// Binary snapshot format for (Dictionary, TripleStore) with mmap load.
//
// A snapshot freezes a KB so cold start is a checksum + mmap instead of an
// N-Triples re-parse: the store's shard layout is written as-is (per-shard
// SPO/POS/OSP segments, already sorted), so loading attaches read-only spans
// straight into the mapped file — zero copies of triple data, pages faulted
// in on demand by the OS. Only the dictionary is materialized (terms are
// variable-length strings and the in-memory index must exist anyway).
//
// File layout (native-endian, written and read on the same architecture;
// all offsets 8-byte aligned):
//
//   [Header]          96 bytes, see SnapshotHeader. Magic "SOFYSNAP",
//                     version, store options, counts, dictionary extent,
//                     payload checksum, total file size.
//   [Group table]     num_groups x u64: promoted predicate ids, group order.
//   [Shard table]     num_shards x 4 u64: triple count + absolute offsets
//                     of the shard's SPO/POS/OSP segments.
//   [Dictionary]      term records in id order (id 1 first): kind byte,
//                     3 lengths, then lexical/datatype/language bytes.
//   [Triple segments] per shard, three sorted arrays of 12-byte Triples.
//
// Integrity: the header stores the file size (truncation check) and a
// 64-bit mix-checksum over every byte after the header (corruption check,
// verified on load unless SnapshotLoadOptions says otherwise). Any bounds
// or checksum failure rejects the file before a single triple is attached.

#ifndef SOFYA_RDF_STORE_SNAPSHOT_H_
#define SOFYA_RDF_STORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace sofya {

/// Outcome counters for a snapshot save or load.
struct SnapshotReport {
  size_t terms = 0;      ///< Dictionary entries written/loaded.
  size_t triples = 0;    ///< Store size.
  size_t shards = 0;     ///< Total shard count (hash + dedicated).
  size_t groups = 0;     ///< Promoted predicate groups.
  uint64_t bytes = 0;    ///< Snapshot file size.
};

struct SnapshotLoadOptions {
  /// Verify the payload checksum before attaching (one streaming pass over
  /// the mapped file). Disable only for trusted files on hot paths.
  bool verify_checksum = true;
};

/// Writes `store` + `dict` to `path` (atomically enough for SOFYA's use:
/// whole-file write, fails without a partial header checksum matching).
/// The store's indexes are forced before writing; the store is logically
/// const.
StatusOr<SnapshotReport> SaveStoreSnapshot(const TripleStore& store,
                                           const Dictionary& dict,
                                           const std::string& path);

/// Loads a snapshot into an EMPTY `dict` and `store`: rebuilds the
/// dictionary, then attaches the store's shards as zero-copy spans into the
/// mmap'd file (kept alive by the store until its first write thaws it).
StatusOr<SnapshotReport> LoadStoreSnapshot(const std::string& path,
                                           Dictionary* dict,
                                           TripleStore* store,
                                           const SnapshotLoadOptions& options =
                                               SnapshotLoadOptions());

/// True iff the file at `path` starts with the snapshot magic — used by the
/// CLI to auto-detect snapshot vs N-Triples inputs.
bool LooksLikeSnapshot(const std::string& path);

}  // namespace sofya

#endif  // SOFYA_RDF_STORE_SNAPSHOT_H_
