// Deterministic pseudo-random number generation.
//
// Every stochastic component in SOFYA (world generation, sampling, latency
// models, failure injection) draws from an explicitly seeded Rng so that
// experiments are bit-for-bit reproducible. We do not use std::mt19937 /
// std::uniform_int_distribution because their outputs are not guaranteed to
// be identical across standard library implementations; Xoshiro256** plus
// hand-rolled distributions are.

#ifndef SOFYA_UTIL_RANDOM_H_
#define SOFYA_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sofya {

/// SplitMix64: used to expand a 64-bit seed into Xoshiro state and to derive
/// independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also feed
/// std::shuffle-style algorithms, though SOFYA ships its own distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Two Rngs with equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x5eedu) { Reseed(seed); }

  /// Re-initializes the state from `seed`.
  void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method (bias negligible for bound << 2^64).
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // 128-bit multiply-shift.
    unsigned __int128 m =
        static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(span == 0 ? Next() : Below(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Geometric-ish positive integer: 1 + floor of an exponential with the
  /// given mean minus 1; used for fan-out counts. mean must be >= 1.
  uint64_t FanOut(double mean) {
    assert(mean >= 1.0);
    if (mean <= 1.0) return 1;
    // Shifted geometric with success prob 1/mean.
    const double p = 1.0 / mean;
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 1e-300) u = 1e-300;
    const uint64_t extra =
        static_cast<uint64_t>(std::log(u) / std::log(1.0 - p));
    return 1 + extra;
  }

  /// Derives an independent child generator; distinct `stream` values give
  /// decorrelated streams under the same parent state.
  Rng Fork(uint64_t stream) {
    SplitMix64 sm(Next() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234abcdULL));
    Rng child(0);
    child.state_[0] = sm.Next();
    child.state_[1] = sm.Next();
    child.state_[2] = sm.Next();
    child.state_[3] = sm.Next();
    return child;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, 1, ..., n-1} by inverse CDF
/// over precomputed cumulative weights. Rank 0 is the most frequent item.
///
/// Used to give synthetic KBs the heavy-tailed subject/degree distributions
/// observed in YAGO/DBpedia.
class ZipfSampler {
 public:
  /// Builds the CDF for `n` items with exponent `s` (s = 0 => uniform).
  ZipfSampler(size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (auto& c : cdf_) c /= acc;
  }

  /// Number of items.
  size_t size() const { return cdf_.size(); }

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf_[i] >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

/// Floyd's algorithm: k distinct uniform indices from [0, n), in
/// deterministic (sorted) order. Requires k <= n.
std::vector<size_t> SampleWithoutReplacement(Rng& rng, size_t n, size_t k);

/// Fisher–Yates shuffle driven by Rng (std::shuffle is not
/// implementation-stable).
template <typename T>
void Shuffle(Rng& rng, std::vector<T>& items) {
  if (items.size() < 2) return;
  for (size_t i = items.size() - 1; i > 0; --i) {
    const size_t j = rng.Below(i + 1);
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace sofya

#endif  // SOFYA_UTIL_RANDOM_H_
