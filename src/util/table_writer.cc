#include "util/table_writer.h"

#include <algorithm>

#include "util/string_util.h"

namespace sofya {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  while (row.size() < header_.size()) row.emplace_back();
  while (header_.size() < row.size()) header_.emplace_back();
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label,
                         const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

std::string TableWriter::ToMarkdown() const {
  std::string out = "| " + Join(header_, " | ") + " |\n|";
  for (size_t i = 0; i < header_.size(); ++i) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += "| " + Join(row, " | ") + " |\n";
  }
  return out;
}

std::string TableWriter::ToCsv() const {
  std::string out;
  std::vector<std::string> escaped;
  escaped.reserve(header_.size());
  for (const auto& h : header_) escaped.push_back(CsvEscape(h));
  out += Join(escaped, ",") + "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& cell : row) escaped.push_back(CsvEscape(cell));
    out += Join(escaped, ",") + "\n";
  }
  return out;
}

std::string TableWriter::ToAligned() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    return line;
  };
  std::string out = render_row(header_) + "\n";
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row) + "\n";
  return out;
}

void TableWriter::Print(std::ostream& os) const { os << ToAligned(); }

}  // namespace sofya
