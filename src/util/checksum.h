// Streaming 64-bit mix checksum shared by the binary on-disk formats
// (rdf/store_snapshot.cc, endpoint/cassette.cc).
//
// Boundary-independent: Update() may be called with arbitrary slices, the
// digest only depends on the byte sequence, so a writer issuing many small
// writes and a verifier running one pass over a mapped payload agree.
// This is an integrity check against truncation/corruption, not a
// cryptographic MAC.

#ifndef SOFYA_UTIL_CHECKSUM_H_
#define SOFYA_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace sofya {

class Checksummer {
 public:
  void Update(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    total_ += n;
    if (buffered_ > 0) {
      while (buffered_ < 8 && n > 0) {
        buf_[buffered_++] = *p++;
        --n;
      }
      if (buffered_ == 8) {
        MixBlock(buf_);
        buffered_ = 0;
      }
    }
    while (n >= 8) {
      MixBlock(p);
      p += 8;
      n -= 8;
    }
    while (n > 0) {
      buf_[buffered_++] = *p++;
      --n;
    }
  }

  uint64_t Finish() {
    if (buffered_ > 0) {
      std::memset(buf_ + buffered_, 0, 8 - buffered_);
      MixBlock(buf_);
      buffered_ = 0;
    }
    uint64_t h = h_ ^ total_;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 32;
    return h;
  }

 private:
  void MixBlock(const uint8_t* p) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    h_ = (h_ ^ v) * 0x9E3779B97F4A7C15ULL;
    h_ ^= h_ >> 29;
  }

  uint64_t h_ = 0x9AE16A3B2F90404FULL;
  uint8_t buf_[8];
  size_t buffered_ = 0;
  uint64_t total_ = 0;
};

}  // namespace sofya

#endif  // SOFYA_UTIL_CHECKSUM_H_
