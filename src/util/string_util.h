// Small string helpers shared across modules (no locale dependence).

#ifndef SOFYA_UTIL_STRING_UTIL_H_
#define SOFYA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sofya {

/// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits on ASCII whitespace runs; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (bytewise; sufficient for IRIs and test literals).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every char is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimals ("0.95").
std::string FormatDouble(double value, int digits);

/// Escapes a string for embedding in an N-Triples literal ("a\"b" etc.).
std::string EscapeNTriples(std::string_view s);

/// Reverses EscapeNTriples; invalid escapes are kept verbatim.
std::string UnescapeNTriples(std::string_view s);

}  // namespace sofya

#endif  // SOFYA_UTIL_STRING_UTIL_H_
