#include "util/status.h"

#include <ostream>
#include <string>

namespace sofya {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  Status out(code_, std::move(msg));
  out.retry_after_ms_ = retry_after_ms_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sofya
