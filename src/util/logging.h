// Minimal leveled logging. Off by default in tests and benchmarks;
// examples turn on kInfo to narrate the pipeline.

#ifndef SOFYA_UTIL_LOGGING_H_
#define SOFYA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sofya {

/// Severity levels, ordered.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level (default: kWarning).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; writes on destruction if `level` passes the filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sofya

#define SOFYA_LOG(level)                                          \
  ::sofya::internal::LogMessage(::sofya::LogLevel::k##level,      \
                                __FILE__, __LINE__)

#endif  // SOFYA_UTIL_LOGGING_H_
