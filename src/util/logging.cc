#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace sofya {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level.load()) return;
  const std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
}

}  // namespace internal
}  // namespace sofya
