#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sofya {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(input.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

std::string EscapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[i + 1];
    switch (next) {
      case '\\':
        out += '\\';
        ++i;
        break;
      case '"':
        out += '"';
        ++i;
        break;
      case 'n':
        out += '\n';
        ++i;
        break;
      case 'r':
        out += '\r';
        ++i;
        break;
      case 't':
        out += '\t';
        ++i;
        break;
      default:
        out += s[i];  // Keep unknown escapes verbatim.
    }
  }
  return out;
}

}  // namespace sofya
