// Tabular report emission (markdown / CSV / aligned plain text).
//
// The benchmark harness prints the same rows the paper's Table 1 reports;
// TableWriter keeps that presentation logic out of the experiment code.

#ifndef SOFYA_UTIL_TABLE_WRITER_H_
#define SOFYA_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sofya {

/// Accumulates rows of string cells under a header and renders them.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> header);

  /// Appends one row; short rows are padded with empty cells, long rows are
  /// an error recorded by padding the header (never drops data).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `digits` decimals after a label.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 2);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

  /// GitHub-flavoured markdown.
  std::string ToMarkdown() const;

  /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  std::string ToCsv() const;

  /// Space-aligned plain text for terminals.
  std::string ToAligned() const;

  /// Writes ToAligned() to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sofya

#endif  // SOFYA_UTIL_TABLE_WRITER_H_
