// Wall-clock timing for benches and endpoint accounting.

#ifndef SOFYA_UTIL_TIMER_H_
#define SOFYA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sofya {

/// Monotonic stopwatch. Started on construction; Restart() resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds (double for printing).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sofya

#endif  // SOFYA_UTIL_TIMER_H_
