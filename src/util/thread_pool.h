// ThreadPool: a fixed-size worker pool with future-returning submission.
//
// Deliberately minimal — no work stealing, no priorities, no dynamic
// resizing. SOFYA's parallelism is coarse (one task = one whole relation
// alignment, thousands of endpoint queries each), so a single locked deque
// is nowhere near contention; what matters is that exceptions propagate
// through the returned futures and that destruction drains the queue before
// joining, so no submitted task is ever silently dropped.

#ifndef SOFYA_UTIL_THREAD_POOL_H_
#define SOFYA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sofya {

/// Fixed-N worker pool. Submit() hands back a std::future; a task that
/// throws stores the exception in its future (the worker survives).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Drains every queued task, then joins the workers. Tasks submitted
  /// before destruction always run.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. The future also
  /// carries any exception `fn` throws. Must not be called during/after
  /// destruction.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    // packaged_task is move-only and std::function requires copyable
    // callables; the shared_ptr wrapper is the standard bridge.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();  // packaged_task captures exceptions into the future.
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace sofya

#endif  // SOFYA_UTIL_THREAD_POOL_H_
