// ThreadPool: a fixed-size worker pool with per-worker steal deques.
//
// Two submission paths:
//
//   * Submit(fn)  — future-returning, exceptions propagate through the
//                   future. The external entry point.
//   * Post(fn)    — fire-and-forget continuation, the phase-decomposed
//                   alignment scheduler's entry point. A Post from inside a
//                   worker lands on that worker's OWN deque (LIFO hot end),
//                   so a relation's next phase tends to stay cache-warm on
//                   the worker that finished the previous one.
//
// Scheduling is work-stealing over lock-based deques (the chase-lev
// structure without the lock-free arithmetic — SOFYA's tasks are endpoint
// query pipelines, microseconds to seconds each, so a per-deque mutex is
// nowhere near contention): a worker pops its own deque from the back
// (LIFO, locality), takes external work from a shared injection queue, and
// otherwise steals from a sibling's front (FIFO — the oldest task is the
// most likely to be a big untouched chain head). Stealing is what keeps the
// pool busy when one giant relation fans out far more subtasks than its
// siblings: idle workers drain the hot worker's deque instead of idling
// behind a fixed per-relation assignment.
//
// Destruction drains every queued task before joining, so no submitted task
// is ever silently dropped.

#ifndef SOFYA_UTIL_THREAD_POOL_H_
#define SOFYA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sofya {

/// Fixed-N work-stealing pool; see file comment.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    deques_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      deques_.push_back(std::make_unique<WorkerDeque>());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  /// Drains every queued task, then joins the workers. Tasks submitted
  /// before destruction always run.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. The future also
  /// carries any exception `fn` throws. Must not be called during/after
  /// destruction.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    // packaged_task is move-only and std::function requires copyable
    // callables; the shared_ptr wrapper is the standard bridge.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    Post([task] { (*task)(); });
    return future;
  }

  /// Fire-and-forget enqueue. From a worker thread of THIS pool the task
  /// goes to that worker's own deque (hot end); from outside it goes to the
  /// shared injection queue. The caller owns failure handling — an
  /// exception escaping a posted task terminates (post Status-returning
  /// work only).
  void Post(std::function<void()> fn) {
    const Worker current = current_worker_;
    if (current.pool == this) {
      WorkerDeque& mine = *deques_[current.index];
      std::lock_guard<std::mutex> lock(mine.mu);
      mine.tasks.push_back(std::move(fn));
    } else {
      std::lock_guard<std::mutex> lock(injection_mu_);
      injection_.push_back(std::move(fn));
    }
    {
      // Bump the queue version under the idle lock so a worker between a
      // failed scan and its wait observes either the new version or the
      // notification — never neither (no lost wakeups).
      std::lock_guard<std::mutex> lock(idle_mu_);
      ++version_;
    }
    wake_.notify_one();
  }

  size_t num_threads() const { return workers_.size(); }

  /// True when called from one of this pool's worker threads (callers that
  /// must not block on pool work from inside the pool assert on this).
  bool OnWorkerThread() const { return current_worker_.pool == this; }

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;  // Guarded by mu.
  };

  /// Which pool/worker the current thread belongs to (Post routing).
  struct Worker {
    ThreadPool* pool = nullptr;
    size_t index = 0;
  };
  static thread_local Worker current_worker_;

  bool TryPopOwn(size_t i, std::function<void()>* task) {
    WorkerDeque& mine = *deques_[i];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (mine.tasks.empty()) return false;
    *task = std::move(mine.tasks.back());  // LIFO: newest, cache-warm.
    mine.tasks.pop_back();
    return true;
  }

  bool TryPopInjection(std::function<void()>* task) {
    std::lock_guard<std::mutex> lock(injection_mu_);
    if (injection_.empty()) return false;
    *task = std::move(injection_.front());  // FIFO: submission order.
    injection_.pop_front();
    return true;
  }

  bool TrySteal(size_t thief, std::function<void()>* task) {
    for (size_t k = 1; k < deques_.size(); ++k) {
      WorkerDeque& victim = *deques_[(thief + k) % deques_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.tasks.empty()) continue;
      *task = std::move(victim.tasks.front());  // FIFO: oldest chain head.
      victim.tasks.pop_front();
      return true;
    }
    return false;
  }

  void WorkerLoop(size_t i) {
    current_worker_ = Worker{this, i};
    for (;;) {
      uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        seen = version_;
      }
      std::function<void()> task;
      if (TryPopOwn(i, &task) || TryPopInjection(&task) ||
          TrySteal(i, &task)) {
        task();  // Submit() wraps in packaged_task (captures exceptions).
        continue;
      }
      // The scan came up empty against version `seen`. Sleep only if
      // nothing was posted since; otherwise rescan. A worker that exits
      // here saw every queue empty — a task posted by a still-running
      // sibling bumps the version and is drained by that sibling, so no
      // accepted task is dropped.
      std::unique_lock<std::mutex> lock(idle_mu_);
      wake_.wait(lock,
                 [&] { return stopping_ || version_ != seen; });
      if (version_ != seen) continue;
      if (stopping_) return;
    }
  }

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex injection_mu_;
  std::deque<std::function<void()>> injection_;  // Guarded by injection_mu_.

  std::mutex idle_mu_;
  std::condition_variable wake_;
  uint64_t version_ = 0;   // Bumped on every Post. Guarded by idle_mu_.
  bool stopping_ = false;  // Guarded by idle_mu_.
};

inline thread_local ThreadPool::Worker ThreadPool::current_worker_;

}  // namespace sofya

#endif  // SOFYA_UTIL_THREAD_POOL_H_
