// Hashing helpers: combine and pair hashing for unordered containers.

#ifndef SOFYA_UTIL_HASH_H_
#define SOFYA_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace sofya {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
          (seed >> 4);
}

/// std::hash-compatible functor for std::pair.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombine(seed, p.first);
    HashCombine(seed, p.second);
    return seed;
  }
};

/// FNV-1a over raw bytes; stable across platforms.
inline uint64_t Fnv1a(const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sofya

#endif  // SOFYA_UTIL_HASH_H_
