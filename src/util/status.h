// Status / StatusOr: RocksDB/Arrow-style error propagation.
//
// SOFYA never throws exceptions across library boundaries. Fallible
// operations return Status (or StatusOr<T> when they also produce a value).
// Callers either handle the error or propagate it with SOFYA_RETURN_IF_ERROR
// / SOFYA_ASSIGN_OR_RETURN.

#ifndef SOFYA_UTIL_STATUS_H_
#define SOFYA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sofya {

/// Canonical error space, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed malformed input.
  kNotFound = 2,          ///< A referenced entity/relation/file is absent.
  kAlreadyExists = 3,     ///< Insertion collides with existing state.
  kOutOfRange = 4,        ///< Index/offset beyond bounds.
  kResourceExhausted = 5, ///< Query budget / row cap exceeded.
  kUnavailable = 6,       ///< (Simulated) endpoint failure; retryable.
  kDeadlineExceeded = 7,  ///< Simulated latency exceeded the deadline.
  kInternal = 8,          ///< Invariant violation inside SOFYA.
  kParseError = 9,        ///< Syntactic error in N-Triples/SPARQL input.
  kUnimplemented = 10,    ///< Feature intentionally not supported.
};

/// Human-readable name of a StatusCode ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error result without a payload.
///
/// Cheap to copy in the success case (no allocation); error case carries a
/// code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error class.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Appends context in front of the existing message (no-op on OK).
  /// Payload hints (retry_after_ms) are preserved.
  Status WithContext(std::string_view context) const;

  /// Attaches a server-provided retry hint (HTTP Retry-After) to an error.
  /// The hint rides the Status through decorator layers so the retry policy
  /// can honor the server's own pacing instead of its blind exponential
  /// schedule. No-op on OK.
  Status WithRetryAfterMs(double delay_ms) const {
    Status out = *this;
    if (!out.ok() && delay_ms >= 0.0) out.retry_after_ms_ = delay_ms;
    return out;
  }

  /// True when a server supplied a retry pacing hint with this error.
  bool has_retry_after() const { return retry_after_ms_ >= 0.0; }

  /// The hint in milliseconds; only meaningful when has_retry_after().
  double retry_after_ms() const { return retry_after_ms_; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  double retry_after_ms_ = -1.0;  ///< Negative: no hint attached.
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T or an error Status. Modeled after absl::StatusOr.
///
/// Accessing value() on an error StatusOr is a programming bug (asserts in
/// debug builds; undefined in release).
template <typename T>
class StatusOr {
 public:
  /// Error constructor. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// Value constructors.
  StatusOr(const T& value) : value_(value) {}             // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}       // NOLINT

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates errors to the caller (Status-returning functions only).
#define SOFYA_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::sofya::Status _sofya_status = (expr);        \
    if (!_sofya_status.ok()) return _sofya_status; \
  } while (false)

#define SOFYA_CONCAT_IMPL_(a, b) a##b
#define SOFYA_CONCAT_(a, b) SOFYA_CONCAT_IMPL_(a, b)

// Assigns the value of a StatusOr expression or propagates its error.
//   SOFYA_ASSIGN_OR_RETURN(auto rows, endpoint->Select(query));
#define SOFYA_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto SOFYA_CONCAT_(_sofya_statusor_, __LINE__) = (expr);            \
  if (!SOFYA_CONCAT_(_sofya_statusor_, __LINE__).ok())                \
    return SOFYA_CONCAT_(_sofya_statusor_, __LINE__).status();        \
  lhs = std::move(SOFYA_CONCAT_(_sofya_statusor_, __LINE__)).value()

}  // namespace sofya

#endif  // SOFYA_UTIL_STATUS_H_
