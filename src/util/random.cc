#include "util/random.h"

#include <algorithm>
#include <unordered_set>

namespace sofya {

std::vector<size_t> SampleWithoutReplacement(Rng& rng, size_t n, size_t k) {
  assert(k <= n);
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t unless
  // already chosen, else insert j.
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = rng.Below(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> result(chosen.begin(), chosen.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace sofya
