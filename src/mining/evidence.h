// EvidenceSet: the per-pair observations that feed Eqs. 1 and 2.
//
// For a candidate rule r'(x,y) => r(x,y), each sampled r'-fact — after
// translating (x,y) into the reference KB K via sameAs — contributes one
// PairEvidence:
//   * confirmed : r(x,y) ∈ K                       (numerator of both)
//   * x_has_r   : ∃y'. r(x,y') ∈ K                 (PCA denominator gate)
//
// The closed-world measure (Eq. 1) counts every sampled pair in the
// denominator; the partial-completeness measure (Eq. 2, AMIE) only counts
// pairs whose subject has at least one r-fact — "a KB knows either all or
// none of the r-attributes of some x".

#ifndef SOFYA_MINING_EVIDENCE_H_
#define SOFYA_MINING_EVIDENCE_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/term.h"
#include "util/hash.h"

namespace sofya {

/// One observed pair for a candidate rule (already in K's term space).
struct PairEvidence {
  Term x;  ///< Subject (translated into K).
  Term y;  ///< Object (translated into K, or the raw literal).
  bool confirmed = false;  ///< r(x,y) holds in K.
  bool x_has_r = false;    ///< x has at least one r-fact in K.
};

/// Deduplicating accumulator of PairEvidence for one rule.
///
/// Pairs are identified by (x, y); re-adding an already-seen pair is a
/// no-op (first observation wins), so oversampling cannot inflate counts.
class EvidenceSet {
 public:
  EvidenceSet() = default;

  /// Adds one observation. Returns false iff (x, y) was already present.
  bool Add(const PairEvidence& evidence);

  /// #(x,y) pairs observed (CWA denominator).
  size_t total_pairs() const { return evidence_.size(); }

  /// #(x,y) with r(x,y) confirmed (numerator of both measures).
  size_t support() const { return support_; }

  /// #(x,y) whose subject has some r-fact (PCA denominator).
  size_t pca_body_size() const { return pca_body_; }

  bool empty() const { return evidence_.empty(); }

  /// All observations, in insertion order.
  const std::vector<PairEvidence>& observations() const { return evidence_; }

 private:
  struct PairKeyHash {
    size_t operator()(const std::pair<Term, Term>& p) const {
      size_t seed = TermHash{}(p.first);
      HashCombine(seed, TermHash{}(p.second));
      return seed;
    }
  };

  std::vector<PairEvidence> evidence_;
  std::unordered_set<std::pair<Term, Term>, PairKeyHash> seen_;
  size_t support_ = 0;
  size_t pca_body_ = 0;
};

}  // namespace sofya

#endif  // SOFYA_MINING_EVIDENCE_H_
