// Rules and alignment kinds.
//
// SOFYA mines logical rules of the shape  kb1:r'(x,y) => kb2:r(x,y)
// (subsumption) and equivalences r' <=> r as double subsumption.

#ifndef SOFYA_MINING_RULE_H_
#define SOFYA_MINING_RULE_H_

#include <string>

#include "rdf/term.h"

namespace sofya {

/// Semantic relationship between an ordered relation pair (r', r).
enum class AlignKind {
  kNone = 0,         ///< No subsumption r' => r.
  kSubsumption = 1,  ///< r' => r holds (but not the converse).
  kEquivalence = 2,  ///< r' => r and r => r'.
};

/// Name for reports.
const char* AlignKindName(AlignKind kind);

/// A candidate subsumption rule  body(x,y) => head(x,y), body in the
/// candidate KB K', head in the reference KB K, with its mined statistics.
struct Rule {
  Term body;  ///< r' — relation IRI in K'.
  Term head;  ///< r  — relation IRI in K.

  /// Evidence counters (see mining/evidence.h for definitions).
  size_t support = 0;    ///< #(x,y): r'(x,y) ∧ r(x,y)
  size_t body_size = 0;  ///< #(x,y): r'(x,y)   (sampled)
  size_t pca_body_size = 0;  ///< #(x,y): r'(x,y) ∧ ∃y'. r(x,y')

  double cwa_conf = 0.0;  ///< Eq. 1.
  double pca_conf = 0.0;  ///< Eq. 2.

  /// Renders "r' => r  (supp=…, cwa=…, pca=…)" for logs.
  std::string ToString() const;
};

}  // namespace sofya

#endif  // SOFYA_MINING_RULE_H_
