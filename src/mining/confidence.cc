#include "mining/confidence.h"

namespace sofya {

const char* ConfidenceMeasureName(ConfidenceMeasure measure) {
  switch (measure) {
    case ConfidenceMeasure::kCwa:
      return "cwaconf";
    case ConfidenceMeasure::kPca:
      return "pcaconf";
  }
  return "unknown";
}

double CwaConfidence(const EvidenceSet& evidence) {
  if (evidence.total_pairs() == 0) return 0.0;
  return static_cast<double>(evidence.support()) /
         static_cast<double>(evidence.total_pairs());
}

double PcaConfidence(const EvidenceSet& evidence) {
  if (evidence.pca_body_size() == 0) return 0.0;
  return static_cast<double>(evidence.support()) /
         static_cast<double>(evidence.pca_body_size());
}

double Confidence(ConfidenceMeasure measure, const EvidenceSet& evidence) {
  switch (measure) {
    case ConfidenceMeasure::kCwa:
      return CwaConfidence(evidence);
    case ConfidenceMeasure::kPca:
      return PcaConfidence(evidence);
  }
  return 0.0;
}

void PopulateRuleStats(const EvidenceSet& evidence, Rule* rule) {
  rule->support = evidence.support();
  rule->body_size = evidence.total_pairs();
  rule->pca_body_size = evidence.pca_body_size();
  rule->cwa_conf = CwaConfidence(evidence);
  rule->pca_conf = PcaConfidence(evidence);
}

}  // namespace sofya
