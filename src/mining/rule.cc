#include "mining/rule.h"

#include "util/string_util.h"

namespace sofya {

const char* AlignKindName(AlignKind kind) {
  switch (kind) {
    case AlignKind::kNone:
      return "none";
    case AlignKind::kSubsumption:
      return "subsumption";
    case AlignKind::kEquivalence:
      return "equivalence";
  }
  return "unknown";
}

std::string Rule::ToString() const {
  return StrFormat("%s(x,y) => %s(x,y)  [supp=%zu body=%zu pca_body=%zu "
                   "cwa=%.3f pca=%.3f]",
                   body.lexical().c_str(), head.lexical().c_str(), support,
                   body_size, pca_body_size, cwa_conf, pca_conf);
}

}  // namespace sofya
