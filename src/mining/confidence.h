// The two ILP confidence measures of Section 2.1.
//
//   cwaconf(r' => r) = #{(x,y): r'(x,y) ∧ r(x,y)} / #{(x,y): r'(x,y)}   (1)
//
//   pcaconf(r' => r) = #{(x,y): r'(x,y) ∧ r(x,y)}
//                      ----------------------------------------          (2)
//                      #{(x,y): r'(x,y) ∧ ∃y'. r(x,y')}
//
// Both are undefined on an empty denominator; we return 0.0 there (an
// unsupported rule is never accepted), and tests pin this edge.

#ifndef SOFYA_MINING_CONFIDENCE_H_
#define SOFYA_MINING_CONFIDENCE_H_

#include "mining/evidence.h"
#include "mining/rule.h"

namespace sofya {

/// Which confidence measure an aligner thresholds on.
enum class ConfidenceMeasure {
  kCwa,  ///< Closed-world (Eq. 1).
  kPca,  ///< Partial-completeness (Eq. 2, AMIE).
};

/// Name for reports ("cwaconf" / "pcaconf").
const char* ConfidenceMeasureName(ConfidenceMeasure measure);

/// Eq. 1 over an evidence set; 0.0 when no pairs were observed.
double CwaConfidence(const EvidenceSet& evidence);

/// Eq. 2 over an evidence set; 0.0 when no subject had r-facts.
double PcaConfidence(const EvidenceSet& evidence);

/// The selected measure.
double Confidence(ConfidenceMeasure measure, const EvidenceSet& evidence);

/// Fills a Rule's statistics from an evidence set (support, sizes, both
/// confidences).
void PopulateRuleStats(const EvidenceSet& evidence, Rule* rule);

}  // namespace sofya

#endif  // SOFYA_MINING_CONFIDENCE_H_
