#include "mining/evidence.h"

namespace sofya {

bool EvidenceSet::Add(const PairEvidence& evidence) {
  if (!seen_.insert({evidence.x, evidence.y}).second) return false;
  evidence_.push_back(evidence);
  if (evidence.confirmed) ++support_;
  if (evidence.x_has_r) ++pca_body_;
  return true;
}

}  // namespace sofya
