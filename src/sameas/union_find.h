// Disjoint-set (union-find) with union by size; path halving happens on the
// write path (Union) only.
//
// Const Find is a pure read — no hidden path compression — so concurrent
// readers over a built structure are race-free (the classic mutable-parent
// halving in a const Find is a data race under parallel sameAs
// translation). Union-by-size keeps chains O(log n) without it, and the
// halving done while building flattens the trees that matter.

#ifndef SOFYA_SAMEAS_UNION_FIND_H_
#define SOFYA_SAMEAS_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

namespace sofya {

/// Union-find over dense indices [0, n). Grows on demand. Reads (Find,
/// Connected, SetSize) are safe from any number of threads as long as no
/// Grow/Union runs concurrently.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n) { Grow(n); }

  /// Ensures indices [0, n) exist.
  void Grow(size_t n) {
    const size_t old = parent_.size();
    if (n <= old) return;
    parent_.resize(n);
    size_.resize(n, 1);
    std::iota(parent_.begin() + static_cast<ptrdiff_t>(old), parent_.end(),
              old);
  }

  size_t size() const { return parent_.size(); }

  /// Representative of x's set. Pure read (no path compression).
  size_t Find(size_t x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// Merges the sets of a and b; returns false if already merged.
  bool Union(size_t a, size_t b) {
    size_t ra = FindAndHalve(a);
    size_t rb = FindAndHalve(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  /// True iff a and b are in the same set.
  bool Connected(size_t a, size_t b) const { return Find(a) == Find(b); }

  /// Size of the set containing x.
  size_t SetSize(size_t x) const { return size_[Find(x)]; }

 private:
  /// Find with path halving — write-path only.
  size_t FindAndHalve(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace sofya

#endif  // SOFYA_SAMEAS_UNION_FIND_H_
