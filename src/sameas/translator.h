// CrossKbTranslator: direction-fixed entity translation through sameAs.
//
// Wraps a SameAsIndex with a target namespace so samplers can say
// "translate this K' entity into K" without repeating prefix plumbing.
// Literals pass through unchanged (they are matched by similarity, not
// identity — see similarity/literal_matcher.h).

#ifndef SOFYA_SAMEAS_TRANSLATOR_H_
#define SOFYA_SAMEAS_TRANSLATOR_H_

#include <string>
#include <utility>

#include "rdf/term.h"
#include "sameas/sameas_index.h"
#include "util/status.h"

namespace sofya {

/// Translates terms into a fixed target KB namespace.
class CrossKbTranslator {
 public:
  /// `links` must outlive the translator. `target_prefix` is the target
  /// KB's base IRI (e.g. "http://kb2.sofya.org/").
  CrossKbTranslator(const SameAsIndex* links, std::string target_prefix)
      : links_(links), target_prefix_(std::move(target_prefix)) {}

  const std::string& target_prefix() const { return target_prefix_; }

  /// IRIs translate through sameAs; literals are returned unchanged.
  StatusOr<Term> Translate(const Term& t) const {
    if (t.is_literal()) return t;
    return links_->TranslateTo(t, target_prefix_);
  }

  /// True iff Translate would succeed.
  bool CanTranslate(const Term& t) const {
    if (t.is_literal()) return true;
    return links_->HasTranslationTo(t, target_prefix_);
  }

 private:
  const SameAsIndex* links_;  // Not owned.
  std::string target_prefix_;
};

}  // namespace sofya

#endif  // SOFYA_SAMEAS_TRANSLATOR_H_
