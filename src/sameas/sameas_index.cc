#include "sameas/sameas_index.h"

#include <algorithm>

#include "util/string_util.h"

namespace sofya {

size_t SameAsIndex::InternLocal(const Term& t) {
  auto it = ids_.find(t);
  if (it != ids_.end()) return it->second;
  const size_t id = terms_.size();
  terms_.push_back(t);
  ids_.emplace(t, id);
  uf_.Grow(terms_.size());
  groups_dirty_ = true;
  return id;
}

void SameAsIndex::AddLink(const Term& a, const Term& b) {
  const size_t ia = InternLocal(a);
  const size_t ib = InternLocal(b);
  if (uf_.Union(ia, ib)) ++num_links_;
  groups_dirty_ = true;
}

bool SameAsIndex::AreEquivalent(const Term& a, const Term& b) const {
  auto ia = ids_.find(a);
  auto ib = ids_.find(b);
  if (ia == ids_.end() || ib == ids_.end()) return false;
  return uf_.Connected(ia->second, ib->second);
}

void SameAsIndex::EnsureGroups() const {
  if (!groups_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(groups_mu_);
  if (!groups_dirty_.load(std::memory_order_relaxed)) return;
  groups_.clear();
  for (size_t i = 0; i < terms_.size(); ++i) {
    groups_[uf_.Find(i)].push_back(i);
  }
  groups_dirty_.store(false, std::memory_order_release);
}

std::vector<Term> SameAsIndex::EquivalentsOf(const Term& x) const {
  auto it = ids_.find(x);
  if (it == ids_.end()) return {};
  EnsureGroups();
  const auto& members = groups_.at(uf_.Find(it->second));
  std::vector<Term> out;
  out.reserve(members.size());
  for (size_t id : members) {
    if (id != it->second) out.push_back(terms_[id]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<Term> SameAsIndex::TranslateTo(const Term& x,
                                        std::string_view target_prefix) const {
  auto it = ids_.find(x);
  if (it == ids_.end()) {
    // An unindexed term may still already be in the target namespace —
    // the shared-identifier regime (canonical IRIs, no links at all, e.g.
    // Wikidata-derived dumps): translation is the identity. Terms outside
    // the target namespace genuinely have no translation.
    if (x.is_iri() && StartsWith(x.lexical(), target_prefix)) return x;
    return Status::NotFound("term has no sameAs links");
  }
  EnsureGroups();
  const auto& members = groups_.at(uf_.Find(it->second));
  const Term* best = nullptr;
  for (size_t id : members) {
    if (id == it->second) continue;
    const Term& candidate = terms_[id];
    if (!candidate.is_iri() || !StartsWith(candidate.lexical(), target_prefix)) {
      continue;
    }
    if (best == nullptr || candidate < *best) best = &candidate;
  }
  // The term itself may already be in the target namespace.
  if (best == nullptr && x.is_iri() &&
      StartsWith(x.lexical(), target_prefix)) {
    return x;
  }
  if (best == nullptr) {
    return Status::NotFound(
        StrFormat("no equivalent of '%s' under prefix '%s'",
                  x.lexical().c_str(), std::string(target_prefix).c_str()));
  }
  return *best;
}

}  // namespace sofya
