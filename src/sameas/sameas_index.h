// SameAsIndex: the set E of cross-KB entity equivalences.
//
// The paper assumes E (owl:sameAs links) is given alongside the two KBs.
// The index stores links between *terms* (IRIs from either KB), groups them
// into equivalence classes with union-find, and answers the two questions
// the samplers ask: "are x1 and x2 the same real-world entity?" and
// "translate x1 into the other KB's identifier space".

// Thread safety: reads (AreEquivalent, EquivalentsOf, TranslateTo) are safe
// from any number of threads — including the first read after AddLink,
// which rebuilds the lazy group memo under an internal lock — as long as no
// AddLink runs concurrently. Build the link set first, then share it with
// the parallel alignment pipeline; that matches the paper's setup, where E
// is given up front.

#ifndef SOFYA_SAMEAS_SAMEAS_INDEX_H_
#define SOFYA_SAMEAS_SAMEAS_INDEX_H_

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "sameas/union_find.h"
#include "util/status.h"

namespace sofya {

/// Equivalence classes over entity IRIs (terms interned locally; ids here
/// are private to the index and unrelated to any KB dictionary).
class SameAsIndex {
 public:
  SameAsIndex() = default;

  // Movable (worlds carry their link set by value); the caller must not
  // move an index other threads are reading.
  SameAsIndex(SameAsIndex&& other) noexcept { MoveFrom(std::move(other)); }
  SameAsIndex& operator=(SameAsIndex&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  SameAsIndex(const SameAsIndex&) = delete;
  SameAsIndex& operator=(const SameAsIndex&) = delete;

  /// Records a ≡ b (owl:sameAs is symmetric/transitive: classes merge).
  void AddLink(const Term& a, const Term& b);

  /// Number of AddLink calls that actually merged two classes.
  size_t num_links() const { return num_links_; }

  /// Number of distinct terms seen.
  size_t num_terms() const { return terms_.size(); }

  /// True iff both terms are known and in the same class.
  bool AreEquivalent(const Term& a, const Term& b) const;

  /// All terms equivalent to `x`, excluding x itself. Empty when x is
  /// unknown or singleton.
  std::vector<Term> EquivalentsOf(const Term& x) const;

  /// Translates `x` to an equivalent term whose IRI begins with
  /// `target_prefix` (the target KB's base IRI). NotFound when no linked
  /// identifier exists in that namespace. When several exist (noisy link
  /// sets), the lexicographically smallest is returned for determinism.
  StatusOr<Term> TranslateTo(const Term& x,
                             std::string_view target_prefix) const;

  /// True iff `x` has any equivalent in the `target_prefix` namespace.
  bool HasTranslationTo(const Term& x, std::string_view target_prefix) const {
    return TranslateTo(x, target_prefix).ok();
  }

 private:
  size_t InternLocal(const Term& t);
  void EnsureGroups() const;

  void MoveFrom(SameAsIndex&& other) {
    std::scoped_lock lock(groups_mu_, other.groups_mu_);
    terms_ = std::move(other.terms_);
    ids_ = std::move(other.ids_);
    uf_ = std::move(other.uf_);
    num_links_ = other.num_links_;
    groups_ = std::move(other.groups_);
    groups_dirty_.store(other.groups_dirty_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }

  std::vector<Term> terms_;
  std::unordered_map<Term, size_t, TermHash> ids_;
  UnionFind uf_;
  size_t num_links_ = 0;

  // root -> member local-ids, rebuilt lazily. The rebuild is double-checked
  // under groups_mu_ so the first read after a write is thread-safe.
  mutable std::mutex groups_mu_;
  mutable std::atomic<bool> groups_dirty_{false};
  mutable std::unordered_map<size_t, std::vector<size_t>> groups_;
};

}  // namespace sofya

#endif  // SOFYA_SAMEAS_SAMEAS_INDEX_H_
