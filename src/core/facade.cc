#include "core/facade.h"

#include <algorithm>

namespace sofya {

Sofya::Sofya(KnowledgeBase* candidate_kb, KnowledgeBase* reference_kb,
             const SameAsIndex* links, SofyaOptions options)
    : candidate_local_(candidate_kb), reference_local_(reference_kb) {
  candidate_ = &candidate_local_;
  reference_ = &reference_local_;
  if (options.throttle) {
    candidate_throttled_ = std::make_unique<ThrottledEndpoint>(
        &candidate_local_, options.candidate_throttle);
    reference_throttled_ = std::make_unique<ThrottledEndpoint>(
        &reference_local_, options.reference_throttle);
    // Retry sits on the client side of the throttle: each retry consumes
    // budget, exactly as a real re-issued request would.
    candidate_retrying_ = std::make_unique<RetryingEndpoint>(
        candidate_throttled_.get(), options.retry);
    reference_retrying_ = std::make_unique<RetryingEndpoint>(
        reference_throttled_.get(), options.retry);
    candidate_ = candidate_retrying_.get();
    reference_ = reference_retrying_.get();
  }
  if (options.cache) {
    // The cache is the outermost (client-side) layer: a hit costs neither
    // budget, simulated latency, nor a retry attempt.
    candidate_caching_ = std::make_unique<CachingEndpoint>(
        candidate_, options.candidate_cache);
    reference_caching_ = std::make_unique<CachingEndpoint>(
        reference_, options.reference_cache);
    candidate_ = candidate_caching_.get();
    reference_ = reference_caching_.get();
  }
  on_the_fly_ = std::make_unique<OnTheFlyAligner>(candidate_, reference_,
                                                  links, options.aligner);
}

StatusOr<const AlignmentResult*> Sofya::Align(
    const std::string& relation_iri) {
  return on_the_fly_->AlignCached(Term::Iri(relation_iri));
}

StatusOr<std::vector<const AlignmentResult*>> Sofya::AlignAll(
    const std::vector<std::string>& relation_iris, size_t num_threads) {
  std::vector<Term> relations;
  relations.reserve(relation_iris.size());
  for (const std::string& iri : relation_iris) {
    relations.push_back(Term::Iri(iri));
  }
  return on_the_fly_->AlignManyCached(relations, num_threads);
}

std::vector<std::string> Sofya::ReferenceRelations() const {
  std::vector<std::string> iris;
  const KnowledgeBase* kb = reference_local_.kb();
  for (TermId p : kb->Relations()) {
    const Term& term = kb->dict().Decode(p);
    if (term.is_iri()) iris.push_back(term.lexical());
  }
  std::sort(iris.begin(), iris.end());
  return iris;
}

StatusOr<Term> Sofya::BestCandidateFor(const std::string& relation_iri) {
  return on_the_fly_->BestCandidateFor(Term::Iri(relation_iri));
}

StatusOr<SelectQuery> Sofya::RewriteQuery(
    const SelectQuery& reference_query) {
  return on_the_fly_->RewriteQuery(reference_query);
}

StatusOr<ResultSet> Sofya::ExecuteOnCandidate(const SelectQuery& query) {
  return candidate_->Select(query);
}

StatusOr<ResultSet> Sofya::ExecuteOnReference(const SelectQuery& query) {
  return reference_->Select(query);
}

EndpointStats Sofya::TotalCost() const {
  EndpointStats total = candidate_->stats();
  total.Merge(reference_->stats());
  return total;
}

}  // namespace sofya
