#include "core/facade.h"

#include <algorithm>

#include "endpoint/paged_select.h"

namespace sofya {

Sofya::Sofya(KnowledgeBase* candidate_kb, KnowledgeBase* reference_kb,
             const SameAsIndex* links, SofyaOptions options) {
  LocalEndpointOptions local_options;
  local_options.engine.planner = options.planner;
  candidate_local_ =
      std::make_unique<LocalEndpoint>(candidate_kb, local_options);
  reference_local_ =
      std::make_unique<LocalEndpoint>(reference_kb, local_options);
  BuildStack(candidate_local_.get(), reference_local_.get(),
             /*always_retry=*/false, links, options);
}

Sofya::Sofya(std::unique_ptr<Endpoint> candidate_base,
             std::unique_ptr<Endpoint> reference_base,
             const SameAsIndex* links, SofyaOptions options) {
  candidate_base_owned_ = std::move(candidate_base);
  reference_base_owned_ = std::move(reference_base);
  // Real networks fail: the retry layer is unconditional for remote bases.
  BuildStack(candidate_base_owned_.get(), reference_base_owned_.get(),
             /*always_retry=*/true, links, options);
}

void Sofya::BuildStack(Endpoint* candidate_base, Endpoint* reference_base,
                       bool always_retry, const SameAsIndex* links,
                       const SofyaOptions& options) {
  candidate_ = candidate_base;
  reference_ = reference_base;
  if (options.throttle) {
    candidate_throttled_ = std::make_unique<ThrottledEndpoint>(
        candidate_, options.candidate_throttle);
    reference_throttled_ = std::make_unique<ThrottledEndpoint>(
        reference_, options.reference_throttle);
    candidate_ = candidate_throttled_.get();
    reference_ = reference_throttled_.get();
  }
  if (options.throttle || always_retry) {
    // Retry sits on the client side of the throttle: each retry consumes
    // budget, exactly as a real re-issued request would.
    candidate_retrying_ =
        std::make_unique<RetryingEndpoint>(candidate_, options.retry);
    reference_retrying_ =
        std::make_unique<RetryingEndpoint>(reference_, options.retry);
    candidate_ = candidate_retrying_.get();
    reference_ = reference_retrying_.get();
  }
  if (options.cache) {
    // The cache is the outermost (client-side) layer: a hit costs neither
    // budget, simulated latency, nor a retry attempt.
    candidate_caching_ = std::make_unique<CachingEndpoint>(
        candidate_, options.candidate_cache);
    reference_caching_ = std::make_unique<CachingEndpoint>(
        reference_, options.reference_cache);
    candidate_ = candidate_caching_.get();
    reference_ = reference_caching_.get();
  }
  on_the_fly_ = std::make_unique<OnTheFlyAligner>(candidate_, reference_,
                                                  links, options.aligner);
  aligner_options_ = options.aligner;
}

StatusOr<const AlignmentResult*> Sofya::Align(
    const std::string& relation_iri) {
  return on_the_fly_->AlignCached(Term::Iri(relation_iri));
}

StatusOr<std::vector<const AlignmentResult*>> Sofya::AlignAll(
    const std::vector<std::string>& relation_iris, size_t num_threads,
    AlignSchedule schedule) {
  std::vector<Term> relations;
  relations.reserve(relation_iris.size());
  for (const std::string& iri : relation_iris) {
    relations.push_back(Term::Iri(iri));
  }
  StatusOr<std::vector<const AlignmentResult*>> results =
      on_the_fly_->AlignManyCached(relations, num_threads, schedule);
  if (results.ok()) {
    // The audited-run manifest commits to this invocation: config, every
    // verdict in input order, and the query streams both endpoints saw
    // (when journals are attached). Recomputed per call — a later AlignAll
    // is a different run.
    last_manifest_ = BuildRunManifest(aligner_options_, results.value(),
                                      candidate_journal_, reference_journal_);
  }
  return results;
}

StatusOr<std::vector<std::string>> Sofya::ReferenceRelations() {
  std::vector<std::string> iris;
  if (reference_local_ != nullptr) {
    // Local KB: enumerate the dictionary, query-free.
    const KnowledgeBase* kb = reference_local_->kb();
    for (TermId p : kb->Relations()) {
      const Term& term = kb->dict().Decode(p);
      if (term.is_iri()) iris.push_back(term.lexical());
    }
  } else {
    // Remote base: a schema-discovery query through the working stack,
    // paged so a server-side row cap (DBpedia-style) cannot silently
    // truncate the relation list.
    SelectQuery query;
    const VarId s = query.NewVar("s");
    const VarId p = query.NewVar("p");
    const VarId o = query.NewVar("o");
    query.Where(NodeRef::Variable(s), NodeRef::Variable(p),
                NodeRef::Variable(o));
    query.Select({p}).Distinct();
    SOFYA_ASSIGN_OR_RETURN(ResultSet rows,
                           PagedSelect(reference_, query));
    iris.reserve(rows.rows.size());
    for (const auto& row : rows.rows) {
      if (row.empty() || row[0] == kNullTermId) continue;
      SOFYA_ASSIGN_OR_RETURN(Term term, reference_->DecodeTerm(row[0]));
      if (term.is_iri()) iris.push_back(term.lexical());
    }
  }
  std::sort(iris.begin(), iris.end());
  iris.erase(std::unique(iris.begin(), iris.end()), iris.end());
  return iris;
}

StatusOr<Term> Sofya::BestCandidateFor(const std::string& relation_iri) {
  return on_the_fly_->BestCandidateFor(Term::Iri(relation_iri));
}

StatusOr<SelectQuery> Sofya::RewriteQuery(
    const SelectQuery& reference_query) {
  return on_the_fly_->RewriteQuery(reference_query);
}

StatusOr<ResultSet> Sofya::ExecuteOnCandidate(const SelectQuery& query) {
  return candidate_->Select(query);
}

StatusOr<ResultSet> Sofya::ExecuteOnReference(const SelectQuery& query) {
  return reference_->Select(query);
}

StatusOr<PlanExplain> Sofya::ExplainOnCandidate(
    const SelectQuery& query) const {
  if (candidate_local_ == nullptr) {
    return Status::Unimplemented(
        "explain requires an in-process dataset; remote endpoints plan "
        "server-side");
  }
  return candidate_local_->Explain(query);
}

StatusOr<PlanExplain> Sofya::ExplainOnReference(
    const SelectQuery& query) const {
  if (reference_local_ == nullptr) {
    return Status::Unimplemented(
        "explain requires an in-process dataset; remote endpoints plan "
        "server-side");
  }
  return reference_local_->Explain(query);
}

EndpointStats Sofya::TotalCost() const {
  EndpointStats total = candidate_->stats();
  total.Merge(reference_->stats());
  return total;
}

}  // namespace sofya
