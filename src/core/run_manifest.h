// RunManifest: a Merkle-style hash chain over one alignment run —
// configuration, query stream, and verdicts — emitted by Sofya::AlignAll.
//
// Each entry carries a content digest; the chain value of entry i hashes
// (chain of i-1, kind, label, digest), so the final `root` commits to the
// whole run in order: two runs with equal roots produced byte-equal
// configurations, byte-equal per-relation verdicts in the same order, and
// the same set of endpoint interactions. A replayed cassette run is
// *audited* by comparing its root against the recorded run's root; when
// they differ, FirstDivergence() names the first entry that broke.
//
// The serialized form is a line-oriented text file (stable, diffable,
// checked into CI next to its cassette):
//
//   sofya-run-manifest v1
//   config aligner <digest16> <chain16>
//   verdict <relation-iri> <digest16> <chain16>
//   ...
//   queries candidate <digest16> <chain16>
//   queries reference <digest16> <chain16>
//   root <chain16>
//
// Parse() recomputes the chain and rejects any file whose chain or root
// does not verify — a manifest cannot be hand-edited into validity.

#ifndef SOFYA_CORE_RUN_MANIFEST_H_
#define SOFYA_CORE_RUN_MANIFEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "align/relation_aligner.h"
#include "endpoint/cassette.h"
#include "util/status.h"

namespace sofya {

/// One link of the chain.
struct RunManifestEntry {
  std::string kind;    ///< "config", "verdict", or "queries".
  std::string label;   ///< e.g. "aligner", a relation IRI, "candidate".
  std::string digest;  ///< 16-hex content digest of the entry.
  std::string chain;   ///< 16-hex chain value *after* this entry.
};

/// The audited-run manifest. Build with Append() (which extends the chain),
/// or load a serialized one with Parse().
class RunManifest {
 public:
  /// Extends the chain with one entry. `label` must be space- and
  /// newline-free (IRIs and the fixed labels are).
  void Append(std::string kind, std::string label, std::string digest);

  const std::vector<RunManifestEntry>& entries() const { return entries_; }

  /// The chain value after the last entry (the run's identity).
  const std::string& root() const { return root_; }

  /// Line-oriented text form (see file comment).
  std::string Serialize() const;

  /// Parses and *verifies*: recomputes every chain value and the root,
  /// returning ParseError on any malformed line or chain mismatch.
  static StatusOr<RunManifest> Parse(const std::string& text);

 private:
  std::vector<RunManifestEntry> entries_;
  std::string root_ = std::string(16, '0');
};

/// Where two manifests first disagree.
struct ManifestDivergence {
  size_t index;         ///< Entry index (min(size) when one is a prefix).
  std::string what;     ///< Human-readable description of the difference.
};

/// First diverging entry between two manifests; nullopt when their roots
/// (and hence their full chains) agree.
std::optional<ManifestDivergence> FirstDivergence(const RunManifest& a,
                                                  const RunManifest& b);

/// 16-hex rendering of a 64-bit hash (shared by all digest helpers).
std::string HashToHex(uint64_t value);

/// Digest of the alignment configuration: every AlignerOptions field that
/// determines verdicts. Execution-shape knobs (thread count, schedule,
/// planner) are deliberately excluded — the pipeline is bit-identical
/// across them, and the manifest must be too.
std::string DigestAlignerConfig(const AlignerOptions& options);

/// Digest of one relation's alignment outcome: the reference relation,
/// every verdict's decision-relevant fields, and the per-relation query
/// counts. Fleet-level quantities (cache hits, simulated latency) are
/// excluded — they vary with thread count by design.
std::string DigestAlignmentResult(const AlignmentResult& result);

/// Builds the manifest for one AlignAll invocation: config, then one
/// verdict entry per result in input order, then the two query-stream
/// digests (empty digests when no journal was attached).
RunManifest BuildRunManifest(const AlignerOptions& options,
                             const std::vector<const AlignmentResult*>& results,
                             const CassetteJournal* candidate_journal,
                             const CassetteJournal* reference_journal);

}  // namespace sofya

#endif  // SOFYA_CORE_RUN_MANIFEST_H_
