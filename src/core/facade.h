// Sofya: the one-object entry point used by examples and downstream code.
//
// Owns the endpoint plumbing (LocalEndpoint per KB — or any injected base
// endpoint, e.g. HttpSparqlEndpoint for a live SPARQL service — plus
// optional throttling/retry/caching decorators) and an OnTheFlyAligner, so
// callers go from "two KBs and a link set" to "aligned relations /
// rewritten queries" in two lines.

#ifndef SOFYA_CORE_FACADE_H_
#define SOFYA_CORE_FACADE_H_

#include <memory>
#include <string>
#include <vector>

#include "align/on_the_fly.h"
#include "align/relation_aligner.h"
#include "core/run_manifest.h"
#include "endpoint/caching_endpoint.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/throttled_endpoint.h"
#include "rdf/knowledge_base.h"
#include "sameas/sameas_index.h"

namespace sofya {

/// Facade configuration.
struct SofyaOptions {
  AlignerOptions aligner;

  /// Join-order planner for the in-process engines (KB constructor only —
  /// a remote endpoint plans server-side). `use_statistics = false` falls
  /// back to the legacy bound-position heuristic, the A/B baseline.
  PlannerOptions planner;

  /// When true, both endpoints are wrapped in ThrottledEndpoint with the
  /// options below — the realistic remote-access regime (for real remote
  /// bases the throttle acts as a client-side budget/row-cap guard).
  bool throttle = false;
  ThrottleOptions candidate_throttle;
  ThrottleOptions reference_throttle;

  /// Client-side retry of transient (Unavailable) failures with
  /// exponential backoff + jitter. The retry layer is stacked when
  /// `throttle` is on (simulated 503s) and always for remote base
  /// endpoints (real 503s).
  RetryOptions retry;

  /// Client-side LRU result cache, outermost in the stack: repeated
  /// evidence probes are answered locally and never consume query budget.
  /// On by default — SOFYA's probe workload is heavily overlapping.
  bool cache = true;
  CacheOptions candidate_cache;
  CacheOptions reference_cache;
};

/// The facade. KBs and links are borrowed, not owned.
class Sofya {
 public:
  /// `candidate_kb` is K' (searched for body relations r'); `reference_kb`
  /// is K (owns the head relations r you align). `links` is the sameAs set.
  Sofya(KnowledgeBase* candidate_kb, KnowledgeBase* reference_kb,
        const SameAsIndex* links, SofyaOptions options = {});

  /// Remote-base constructor: the facade takes ownership of two base
  /// endpoints (e.g. HttpSparqlEndpoint::Create(...) results, or a mix of
  /// remote and LocalEndpoint) and stacks throttling/retry/caching above
  /// them exactly as it does for local KBs. The retry layer is always
  /// present here — real networks fail.
  Sofya(std::unique_ptr<Endpoint> candidate_base,
        std::unique_ptr<Endpoint> reference_base, const SameAsIndex* links,
        SofyaOptions options = {});

  /// Aligns the reference relation with the given IRI (cached).
  StatusOr<const AlignmentResult*> Align(const std::string& relation_iri);

  /// Aligns many reference relations in parallel across `num_threads`
  /// workers (whole-schema alignment, the regime PARIS targets). Each
  /// relation is decomposed into phase-level subtasks on a work-stealing
  /// pool by default, so one giant relation cannot serialize the tail;
  /// pass AlignSchedule::kRelation for the whole-relation-task scheduler.
  /// Results come back in input order, are memoized like Align's, and are
  /// bit-identical to sequential alignment for any thread count and either
  /// schedule.
  StatusOr<std::vector<const AlignmentResult*>> AlignAll(
      const std::vector<std::string>& relation_iris, size_t num_threads = 1,
      AlignSchedule schedule = AlignSchedule::kPhase);

  /// Every relation IRI appearing as a predicate in the reference KB, in
  /// sorted order — the natural AlignAll input for whole-schema runs.
  /// For a local KB this enumerates the dictionary query-free; for a
  /// remote base it costs one SELECT DISTINCT ?p query on the reference
  /// endpoint.
  StatusOr<std::vector<std::string>> ReferenceRelations();

  /// Best aligned candidate relation for the given reference relation.
  StatusOr<Term> BestCandidateFor(const std::string& relation_iri);

  /// Rewrites a reference-KB query against the candidate KB.
  StatusOr<SelectQuery> RewriteQuery(const SelectQuery& reference_query);

  /// Runs a query on the candidate endpoint (e.g. one from RewriteQuery).
  StatusOr<ResultSet> ExecuteOnCandidate(const SelectQuery& query);

  /// Runs a query on the reference endpoint.
  StatusOr<ResultSet> ExecuteOnReference(const SelectQuery& query);

  /// EXPLAIN against the in-process engines: the join-order plan the query
  /// would run with (chosen clause order, per-clause estimates, filters).
  /// Unimplemented for remote bases — a remote server plans for itself.
  StatusOr<PlanExplain> ExplainOnCandidate(const SelectQuery& query) const;
  StatusOr<PlanExplain> ExplainOnReference(const SelectQuery& query) const;

  /// The working endpoints (cached/throttled when configured).
  Endpoint* candidate_endpoint() { return candidate_; }
  Endpoint* reference_endpoint() { return reference_; }

  /// The caches (nullptr when options.cache is false). Exposed for cache
  /// inspection and for Clear() after mutating a KB.
  CachingEndpoint* candidate_cache() { return candidate_caching_.get(); }
  CachingEndpoint* reference_cache() { return reference_caching_.get(); }

  /// Combined access cost over both endpoints since construction.
  EndpointStats TotalCost() const;

  /// Attaches cassette journals (RecordingEndpoint / ReplayEndpoint) whose
  /// query-stream digests AlignAll folds into the run manifest. Journals
  /// are borrowed; pass nullptr to detach. Without journals the manifest's
  /// `queries` entries carry the empty digest.
  void AttachJournals(const CassetteJournal* candidate,
                      const CassetteJournal* reference) {
    candidate_journal_ = candidate;
    reference_journal_ = reference;
  }

  /// The audited-run manifest of the most recent AlignAll (config, verdict
  /// chain, query-stream digests). Empty until AlignAll succeeds once.
  const RunManifest& last_manifest() const { return last_manifest_; }

  OnTheFlyAligner& on_the_fly() { return *on_the_fly_; }

 private:
  /// Stacks throttle/retry/cache over the two bases and builds the aligner.
  void BuildStack(Endpoint* candidate_base, Endpoint* reference_base,
                  bool always_retry, const SameAsIndex* links,
                  const SofyaOptions& options);

  std::unique_ptr<LocalEndpoint> candidate_local_;  // KB ctor only.
  std::unique_ptr<LocalEndpoint> reference_local_;
  std::unique_ptr<Endpoint> candidate_base_owned_;  // Remote ctor only.
  std::unique_ptr<Endpoint> reference_base_owned_;
  std::unique_ptr<ThrottledEndpoint> candidate_throttled_;
  std::unique_ptr<ThrottledEndpoint> reference_throttled_;
  std::unique_ptr<RetryingEndpoint> candidate_retrying_;
  std::unique_ptr<RetryingEndpoint> reference_retrying_;
  std::unique_ptr<CachingEndpoint> candidate_caching_;
  std::unique_ptr<CachingEndpoint> reference_caching_;
  Endpoint* candidate_ = nullptr;  // Outermost decorator.
  Endpoint* reference_ = nullptr;
  std::unique_ptr<OnTheFlyAligner> on_the_fly_;
  AlignerOptions aligner_options_;  // As configured (manifest config digest).
  const CassetteJournal* candidate_journal_ = nullptr;  // Not owned.
  const CassetteJournal* reference_journal_ = nullptr;  // Not owned.
  RunManifest last_manifest_;
};

}  // namespace sofya

#endif  // SOFYA_CORE_FACADE_H_
