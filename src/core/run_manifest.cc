#include "core/run_manifest.h"

#include <cstdio>
#include <sstream>

#include "util/hash.h"

namespace sofya {
namespace {

bool IsHex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (char c : s) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

/// The chain step: commits to everything before this entry plus the entry
/// itself. Hex strings (not raw words) are hashed so the construction is
/// trivially reproducible from the serialized file alone.
std::string ChainStep(const std::string& prev, const std::string& kind,
                      const std::string& label, const std::string& digest) {
  std::string bytes;
  bytes.reserve(prev.size() + kind.size() + label.size() + digest.size() + 3);
  bytes += prev;
  bytes += '\n';
  bytes += kind;
  bytes += '\n';
  bytes += label;
  bytes += '\n';
  bytes += digest;
  return HashToHex(Fnv1a(bytes.data(), bytes.size()));
}

/// Digest-buffer helpers: fields are appended as text with separators, so
/// the digest is stable across platforms (no struct padding, no endianness)
/// and a changed field cannot alias a neighbor.
void Field(std::string& out, const char* name, uint64_t v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

void Field(std::string& out, const char* name, bool v) {
  Field(out, name, static_cast<uint64_t>(v ? 1 : 0));
}

void Field(std::string& out, const char* name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += name;
  out += '=';
  out += buf;
  out += ';';
}

void Field(std::string& out, const char* name, const std::string& v) {
  out += name;
  out += '=';
  out += v;
  out += ';';
}

void RuleFields(std::string& out, const char* prefix, const Rule& rule) {
  std::string p(prefix);
  Field(out, (p + ".support").c_str(), static_cast<uint64_t>(rule.support));
  Field(out, (p + ".body_size").c_str(),
        static_cast<uint64_t>(rule.body_size));
  Field(out, (p + ".pca_body_size").c_str(),
        static_cast<uint64_t>(rule.pca_body_size));
  Field(out, (p + ".cwa_conf").c_str(), rule.cwa_conf);
  Field(out, (p + ".pca_conf").c_str(), rule.pca_conf);
}

}  // namespace

std::string HashToHex(uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[value & 0xF];
    value >>= 4;
  }
  return out;
}

void RunManifest::Append(std::string kind, std::string label,
                         std::string digest) {
  RunManifestEntry entry;
  entry.kind = std::move(kind);
  entry.label = std::move(label);
  entry.digest = std::move(digest);
  entry.chain = ChainStep(root_, entry.kind, entry.label, entry.digest);
  root_ = entry.chain;
  entries_.push_back(std::move(entry));
}

std::string RunManifest::Serialize() const {
  std::string out = "sofya-run-manifest v1\n";
  for (const RunManifestEntry& e : entries_) {
    out += e.kind;
    out += ' ';
    out += e.label;
    out += ' ';
    out += e.digest;
    out += ' ';
    out += e.chain;
    out += '\n';
  }
  out += "root ";
  out += root_;
  out += '\n';
  return out;
}

StatusOr<RunManifest> RunManifest::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "sofya-run-manifest v1") {
    return Status::ParseError("manifest: missing/unknown header line");
  }
  RunManifest manifest;
  bool saw_root = false;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (saw_root) {
      return Status::ParseError("manifest: content after root line");
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "root") {
      std::string declared, extra;
      if (!(fields >> declared) || fields >> extra || !IsHex16(declared)) {
        return Status::ParseError("manifest: malformed root line");
      }
      if (declared != manifest.root_) {
        return Status::ParseError("manifest: root does not verify");
      }
      saw_root = true;
      continue;
    }
    std::string label, digest, chain, extra;
    if (!(fields >> label >> digest >> chain) || fields >> extra ||
        !IsHex16(digest) || !IsHex16(chain)) {
      return Status::ParseError("manifest: malformed line " +
                                std::to_string(line_no));
    }
    const std::string expected =
        ChainStep(manifest.root_, kind, label, digest);
    if (chain != expected) {
      return Status::ParseError("manifest: chain breaks at line " +
                                std::to_string(line_no) + " (" + kind + " " +
                                label + ")");
    }
    manifest.Append(std::move(kind), std::move(label), std::move(digest));
  }
  if (!saw_root) return Status::ParseError("manifest: missing root line");
  return manifest;
}

std::optional<ManifestDivergence> FirstDivergence(const RunManifest& a,
                                                  const RunManifest& b) {
  if (a.root() == b.root()) return std::nullopt;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  const size_t common = ea.size() < eb.size() ? ea.size() : eb.size();
  for (size_t i = 0; i < common; ++i) {
    if (ea[i].kind != eb[i].kind || ea[i].label != eb[i].label) {
      return ManifestDivergence{
          i, "entry identity differs: " + ea[i].kind + " " + ea[i].label +
                 " vs " + eb[i].kind + " " + eb[i].label};
    }
    if (ea[i].digest != eb[i].digest) {
      return ManifestDivergence{i, ea[i].kind + " " + ea[i].label +
                                       ": digest " + ea[i].digest + " vs " +
                                       eb[i].digest};
    }
  }
  if (ea.size() != eb.size()) {
    const auto& longer = ea.size() > eb.size() ? ea : eb;
    return ManifestDivergence{
        common, "one run has " + std::to_string(longer.size() - common) +
                    " extra entries starting with " + longer[common].kind +
                    " " + longer[common].label};
  }
  // Equal entries but different roots cannot happen for Append-built
  // manifests; report the tail for hand-constructed ones.
  return ManifestDivergence{common, "chains differ despite equal entries"};
}

std::string DigestAlignerConfig(const AlignerOptions& o) {
  std::string buf;
  Field(buf, "measure", static_cast<uint64_t>(o.measure));
  Field(buf, "threshold", o.threshold);
  Field(buf, "min_pairs", static_cast<uint64_t>(o.min_pairs));
  Field(buf, "min_support", static_cast<uint64_t>(o.min_support));
  Field(buf, "use_ubs", o.use_ubs);
  Field(buf, "check_equivalence", o.check_equivalence);
  Field(buf, "finder.sample_facts", static_cast<uint64_t>(o.finder.sample_facts));
  Field(buf, "finder.scan_limit", static_cast<uint64_t>(o.finder.scan_limit));
  Field(buf, "finder.max_candidates",
        static_cast<uint64_t>(o.finder.max_candidates));
  Field(buf, "finder.min_cooccurrence",
        static_cast<uint64_t>(o.finder.min_cooccurrence));
  Field(buf, "finder.seed", o.finder.seed);
  Field(buf, "finder.source", static_cast<uint64_t>(o.finder.source));
  Field(buf, "sampler.sample_size",
        static_cast<uint64_t>(o.sampler.sample_size));
  Field(buf, "sampler.scan_limit", static_cast<uint64_t>(o.sampler.scan_limit));
  Field(buf, "sampler.facts_per_subject_cap",
        static_cast<uint64_t>(o.sampler.facts_per_subject_cap));
  Field(buf, "sampler.seed", o.sampler.seed);
  Field(buf, "ubs.probe_limit", static_cast<uint64_t>(o.ubs.probe_limit));
  Field(buf, "ubs.min_contradictions",
        static_cast<uint64_t>(o.ubs.min_contradictions));
  Field(buf, "ubs.contradiction_support_ratio",
        o.ubs.contradiction_support_ratio);
  return HashToHex(Fnv1a(buf.data(), buf.size()));
}

std::string DigestAlignmentResult(const AlignmentResult& result) {
  std::string buf;
  Field(buf, "relation", result.reference_relation.ToNTriples());
  Field(buf, "verdicts", static_cast<uint64_t>(result.verdicts.size()));
  for (const CandidateVerdict& v : result.verdicts) {
    Field(buf, "candidate", v.relation.ToNTriples());
    Field(buf, "cooccurrences", static_cast<uint64_t>(v.cooccurrences));
    Field(buf, "prior", v.prior);
    RuleFields(buf, "rule", v.rule);
    Field(buf, "passed_threshold", v.passed_threshold);
    Field(buf, "ubs_subsumption_pruned", v.ubs_subsumption_pruned);
    Field(buf, "accepted", v.accepted);
    Field(buf, "reverse_checked", v.reverse_checked);
    if (v.reverse_checked) RuleFields(buf, "reverse_rule", v.reverse_rule);
    Field(buf, "reverse_passed_threshold", v.reverse_passed_threshold);
    Field(buf, "ubs_equivalence_pruned", v.ubs_equivalence_pruned);
    Field(buf, "equivalence", v.equivalence);
  }
  // Per-relation cost counters are deterministic attribution (tracking
  // endpoint); fleet-level cache/latency numbers are not and stay out.
  Field(buf, "candidate_queries", result.candidate_queries);
  Field(buf, "reference_queries", result.reference_queries);
  Field(buf, "rows_shipped", result.rows_shipped);
  return HashToHex(Fnv1a(buf.data(), buf.size()));
}

RunManifest BuildRunManifest(
    const AlignerOptions& options,
    const std::vector<const AlignmentResult*>& results,
    const CassetteJournal* candidate_journal,
    const CassetteJournal* reference_journal) {
  RunManifest manifest;
  manifest.Append("config", "aligner", DigestAlignerConfig(options));
  for (const AlignmentResult* result : results) {
    manifest.Append("verdict", result->reference_relation.lexical(),
                    DigestAlignmentResult(*result));
  }
  const CassetteDigest empty;
  manifest.Append("queries", "candidate",
                  (candidate_journal ? candidate_journal->digest() : empty)
                      .ToHex());
  manifest.Append("queries", "reference",
                  (reference_journal ? reference_journal->digest() : empty)
                      .ToHex());
  return manifest;
}

}  // namespace sofya
