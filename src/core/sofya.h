// Umbrella header: the full public API of the SOFYA library.
//
// Quick start:
//
//   #include "core/sofya.h"
//
//   sofya::SynthWorld world =
//       *sofya::GenerateWorld(sofya::MoviesWorldSpec());
//   sofya::Sofya sofya(world.kb1.get(), world.kb2.get(), &world.links);
//   auto result = sofya.Align("http://kb2.sofya.org/ontology/directedBy");
//
// See examples/ for complete programs and DESIGN.md for the module map.

#ifndef SOFYA_CORE_SOFYA_H_
#define SOFYA_CORE_SOFYA_H_

#include "align/candidate_finder.h"
#include "align/on_the_fly.h"
#include "align/relation_aligner.h"
#include "core/facade.h"
#include "endpoint/caching_endpoint.h"
#include "endpoint/endpoint.h"
#include "endpoint/http_sparql_endpoint.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "endpoint/retry_policy.h"
#include "endpoint/retrying_endpoint.h"
#include "endpoint/select_text.h"
#include "endpoint/sparql_server.h"
#include "endpoint/throttled_endpoint.h"
#include "endpoint/tracking_endpoint.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table1.h"
#include "mining/confidence.h"
#include "mining/evidence.h"
#include "mining/rule.h"
#include "rdf/dictionary.h"
#include "rdf/knowledge_base.h"
#include "rdf/namespaces.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"
#include "sameas/sameas_index.h"
#include "sameas/translator.h"
#include "sampling/sampler_options.h"
#include "sampling/simple_sampler.h"
#include "sampling/unbiased_sampler.h"
#include "similarity/literal_matcher.h"
#include "similarity/string_metrics.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/http_transport.h"
#include "net/loopback_transport.h"
#include "net/socket_transport.h"
#include "sparql/engine.h"
#include "sparql/parser.h"
#include "sparql/planner.h"
#include "sparql/query.h"
#include "sparql/results_json.h"
#include "synth/ground_truth.h"
#include "synth/presets.h"
#include "synth/spec.h"
#include "synth/world_generator.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // SOFYA_CORE_SOFYA_H_
