#include "align/on_the_fly.h"

#include <algorithm>

#include "util/string_util.h"

namespace sofya {

OnTheFlyAligner::OnTheFlyAligner(Endpoint* candidate_kb,
                                 Endpoint* reference_kb,
                                 const SameAsIndex* links,
                                 AlignerOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      aligner_(candidate_kb, reference_kb, links, options),
      to_candidate_(links, candidate_kb->base_iri()) {}

StatusOr<const AlignmentResult*> OnTheFlyAligner::AlignCached(const Term& r) {
  auto it = cache_.find(r);
  if (it != cache_.end()) return &it->second;
  SOFYA_ASSIGN_OR_RETURN(AlignmentResult result, aligner_.Align(r));
  ++alignments_performed_;
  auto [inserted, _] = cache_.emplace(r, std::move(result));
  return &inserted->second;
}

StatusOr<std::vector<const AlignmentResult*>> OnTheFlyAligner::AlignManyCached(
    std::span<const Term> relations, size_t num_threads,
    AlignSchedule schedule) {
  // Collect the distinct relations that still need work.
  std::vector<Term> pending;
  for (const Term& r : relations) {
    if (cache_.find(r) != cache_.end()) continue;
    if (std::find(pending.begin(), pending.end(), r) != pending.end()) {
      continue;
    }
    pending.push_back(r);
  }

  if (!pending.empty()) {
    AlignManyOptions fan_out;
    fan_out.num_threads = num_threads;
    fan_out.schedule = schedule;
    SOFYA_ASSIGN_OR_RETURN(AlignManyResult fleet,
                           aligner_.AlignMany(pending, fan_out));
    alignments_performed_ += fleet.results.size();
    for (size_t i = 0; i < fleet.results.size(); ++i) {
      cache_.emplace(pending[i], std::move(fleet.results[i]));
    }
  }

  std::vector<const AlignmentResult*> out;
  out.reserve(relations.size());
  for (const Term& r : relations) out.push_back(&cache_.at(r));
  return out;
}

StatusOr<Term> OnTheFlyAligner::BestCandidateFor(const Term& r) {
  SOFYA_ASSIGN_OR_RETURN(const AlignmentResult* result, AlignCached(r));

  const CandidateVerdict* best = nullptr;
  auto conf = [&](const CandidateVerdict& v) {
    return aligner_.options().measure == ConfidenceMeasure::kPca
               ? v.rule.pca_conf
               : v.rule.cwa_conf;
  };
  // Prefer equivalences; within a tier, highest confidence wins.
  for (const auto& v : result->verdicts) {
    if (!v.accepted) continue;
    if (best == nullptr) {
      best = &v;
      continue;
    }
    const bool v_better_tier = v.equivalence && !best->equivalence;
    const bool same_tier = v.equivalence == best->equivalence;
    if (v_better_tier || (same_tier && conf(v) > conf(*best))) {
      best = &v;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        StrFormat("no accepted alignment for relation '%s'",
                  r.lexical().c_str()));
  }
  return best->relation;
}

StatusOr<SelectQuery> OnTheFlyAligner::RewriteQuery(
    const SelectQuery& reference_query) {
  SOFYA_RETURN_IF_ERROR(reference_query.Validate());
  SelectQuery rewritten;
  for (size_t v = 0; v < reference_query.num_vars(); ++v) {
    rewritten.NewVar(reference_query.var_name(static_cast<VarId>(v)));
  }

  auto rewrite_node = [&](const NodeRef& node,
                          bool is_predicate) -> StatusOr<NodeRef> {
    if (node.is_var()) return node;
    SOFYA_ASSIGN_OR_RETURN(Term term,
                           reference_kb_->DecodeTerm(node.term()));
    if (is_predicate) {
      SOFYA_ASSIGN_OR_RETURN(Term candidate, BestCandidateFor(term));
      return NodeRef::Constant(candidate_kb_->EncodeTerm(candidate));
    }
    if (term.is_literal()) {
      return NodeRef::Constant(candidate_kb_->EncodeTerm(term));
    }
    SOFYA_ASSIGN_OR_RETURN(Term translated, to_candidate_.Translate(term));
    return NodeRef::Constant(candidate_kb_->EncodeTerm(translated));
  };

  for (const PatternClause& clause : reference_query.clauses()) {
    SOFYA_ASSIGN_OR_RETURN(NodeRef s, rewrite_node(clause.subject, false));
    SOFYA_ASSIGN_OR_RETURN(NodeRef p, rewrite_node(clause.predicate, true));
    SOFYA_ASSIGN_OR_RETURN(NodeRef o, rewrite_node(clause.object, false));
    rewritten.Where(s, p, o);
  }
  for (FilterExpr filter : reference_query.filters()) {
    if (filter.kind == FilterExpr::Kind::kVarEqTerm ||
        filter.kind == FilterExpr::Kind::kVarNeqTerm) {
      SOFYA_ASSIGN_OR_RETURN(Term term,
                             reference_kb_->DecodeTerm(filter.rhs_term));
      Term translated = term;
      if (term.is_iri()) {
        SOFYA_ASSIGN_OR_RETURN(translated, to_candidate_.Translate(term));
      }
      filter.rhs_term = candidate_kb_->EncodeTerm(translated);
    }
    rewritten.Filter(filter);
  }
  rewritten.Select(reference_query.projection());
  rewritten.Distinct(reference_query.distinct());
  rewritten.Limit(reference_query.limit());
  rewritten.Offset(reference_query.offset());
  return rewritten;
}

}  // namespace sofya
