#include "align/candidate_finder.h"

#include <algorithm>

namespace sofya {
namespace {

/// Folds one source's scored output into the finder's result type. `prior`
/// is the PARIS-style noisy-or over the sources that scored the relation:
/// for a single source that collapses to w * score; the composite hands
/// back an already-combined prior (weight 1).
std::vector<CandidateRelation> ToCandidates(
    std::vector<ScoredCandidate> scored, double weight) {
  std::vector<CandidateRelation> out;
  out.reserve(scored.size());
  for (ScoredCandidate& c : scored) {
    out.push_back(CandidateRelation{std::move(c.relation), c.cooccurrences,
                                    weight * c.score});
  }
  return out;
}

}  // namespace

CandidateFinder::CandidateFinder(Endpoint* candidate_kb,
                                 Endpoint* reference_kb,
                                 const CrossKbTranslator* to_candidate,
                                 CandidateFinderOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_candidate_(to_candidate),
      options_(std::move(options)) {}

StatusOr<std::vector<CandidateRelation>> CandidateFinder::FindCandidates(
    const Term& r) {
  switch (options_.source) {
    case CandidateSourceKind::kSameAs: {
      SameAsOverlapSource source(candidate_kb_, reference_kb_, to_candidate_,
                                 options_);
      SOFYA_ASSIGN_OR_RETURN(std::vector<ScoredCandidate> scored,
                             source.Discover(r));
      return ToCandidates(std::move(scored), options_.sameas_weight);
    }
    case CandidateSourceKind::kLexical: {
      LexicalIndexSource source(candidate_kb_, options_);
      SOFYA_ASSIGN_OR_RETURN(std::vector<ScoredCandidate> scored,
                             source.Discover(r));
      return ToCandidates(std::move(scored), options_.lexical_weight);
    }
    case CandidateSourceKind::kDistribution: {
      DistributionSource source(candidate_kb_, reference_kb_, options_);
      SOFYA_ASSIGN_OR_RETURN(std::vector<ScoredCandidate> scored,
                             source.Discover(r));
      return ToCandidates(std::move(scored), options_.distribution_weight);
    }
    case CandidateSourceKind::kAuto: {
      CompositeCandidateSource source(candidate_kb_, reference_kb_,
                                      to_candidate_, options_);
      SOFYA_ASSIGN_OR_RETURN(std::vector<ScoredCandidate> scored,
                             source.Discover(r));
      return ToCandidates(std::move(scored), /*weight=*/1.0);
    }
  }
  return Status::Internal("unknown candidate source kind");
}

}  // namespace sofya
