#include "align/candidate_finder.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "util/hash.h"
#include "util/random.h"

namespace sofya {

CandidateFinder::CandidateFinder(Endpoint* candidate_kb,
                                 Endpoint* reference_kb,
                                 const CrossKbTranslator* to_candidate,
                                 CandidateFinderOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_candidate_(to_candidate),
      options_(options),
      literal_matcher_(options.literal_options) {}

StatusOr<std::vector<CandidateRelation>> CandidateFinder::FindCandidates(
    const Term& r) {
  std::vector<CandidateRelation> result;
  const TermId r_id = reference_kb_->LookupTerm(r);
  if (r_id == kNullTermId) return result;

  // Scan + shuffle a window of r facts.
  PagedSelectOptions page_options;
  page_options.page_size = options_.page_size;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet window,
      PagedSelect(reference_kb_,
                  queries::FactsOfPredicate(r_id, options_.scan_limit),
                  page_options));
  if (window.rows.empty()) return result;

  std::vector<size_t> order(window.rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options_.seed ^
          Fnv1a(r.lexical().data(), r.lexical().size()));
  Shuffle(rng, order);

  // Majority kind vote over the window's objects.
  size_t literal_objects = 0;
  for (const auto& row : window.rows) {
    SOFYA_ASSIGN_OR_RETURN(Term obj, reference_kb_->DecodeTerm(row[1]));
    if (obj.is_literal()) ++literal_objects;
  }
  const bool literal_relation = literal_objects * 2 >= window.rows.size();

  // Qualify sampled facts into probe queries. Qualification (sameAs
  // translation + id lookup) is client-side, so the whole probe set is known
  // before the endpoint is touched — one batch instead of one query per
  // sampled fact, which lets the endpoint stack dedup and cache them.
  struct Probe {
    bool literal;
    Term y2;  // Reference object for literal matching.
  };
  std::vector<Probe> probes;
  std::vector<SelectQuery> probe_queries;
  for (size_t idx : order) {
    if (probes.size() >= options_.sample_facts) break;
    const auto& row = window.rows[idx];
    SOFYA_ASSIGN_OR_RETURN(Term x2, reference_kb_->DecodeTerm(row[0]));
    SOFYA_ASSIGN_OR_RETURN(Term y2, reference_kb_->DecodeTerm(row[1]));

    auto x1 = to_candidate_->Translate(x2);
    if (!x1.ok()) continue;

    if (literal_relation) {
      if (!y2.is_literal()) continue;
      const TermId x1_id = candidate_kb_->LookupTerm(*x1);
      if (x1_id == kNullTermId) continue;
      probes.push_back(Probe{true, y2});
      probe_queries.push_back(queries::FactsOfSubject(x1_id));
      continue;
    }

    auto y1 = to_candidate_->Translate(y2);
    if (!y1.ok()) continue;
    const TermId x1_id = candidate_kb_->LookupTerm(*x1);
    const TermId y1_id = candidate_kb_->LookupTerm(*y1);
    if (x1_id == kNullTermId || y1_id == kNullTermId) continue;
    probes.push_back(Probe{false, Term()});
    probe_queries.push_back(queries::PredicatesBetween(x1_id, y1_id));
  }

  std::map<Term, size_t> counts;  // Ordered: deterministic ties.
  // Every probe answer is needed to score co-occurrence deterministically,
  // so a sub-query that still fails after the stack's per-slot recovery
  // fails the discovery (first error by batch position).
  SOFYA_ASSIGN_OR_RETURN(
      std::vector<ResultSet> probe_results,
      candidate_kb_->SelectMany(probe_queries).IntoValues());
  for (size_t i = 0; i < probes.size(); ++i) {
    const ResultSet& rows = probe_results[i];
    if (probes[i].literal) {
      std::unordered_set<TermId> credited;
      for (const auto& fact_row : rows.rows) {
        SOFYA_ASSIGN_OR_RETURN(Term obj,
                               candidate_kb_->DecodeTerm(fact_row[1]));
        if (!obj.is_literal()) continue;
        if (!literal_matcher_.Matches(obj, probes[i].y2)) continue;
        if (!credited.insert(fact_row[0]).second) continue;
        SOFYA_ASSIGN_OR_RETURN(Term predicate,
                               candidate_kb_->DecodeTerm(fact_row[0]));
        ++counts[predicate];
      }
      continue;
    }
    for (const auto& p_row : rows.rows) {
      SOFYA_ASSIGN_OR_RETURN(Term predicate,
                             candidate_kb_->DecodeTerm(p_row[0]));
      ++counts[predicate];
    }
  }

  for (const auto& [relation, count] : counts) {
    if (count < options_.min_cooccurrence) continue;
    result.push_back(CandidateRelation{relation, count});
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const CandidateRelation& a, const CandidateRelation& b) {
                     if (a.cooccurrences != b.cooccurrences) {
                       return a.cooccurrences > b.cooccurrences;
                     }
                     return a.relation < b.relation;
                   });
  if (result.size() > options_.max_candidates) {
    result.resize(options_.max_candidates);
  }
  return result;
}

}  // namespace sofya
