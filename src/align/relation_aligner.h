// RelationAligner: the end-to-end on-the-fly alignment pipeline for one
// reference relation.
//
//   discover candidates  ->  simple-sample evidence  ->  confidence
//   threshold  ->  (optional) UBS counter-example pruning  ->  subsumptions
//   + equivalence checks (double subsumption, reverse direction sampled the
//   same way with the KB roles swapped).
//
// Everything flows through the two Endpoint interfaces; the aligner never
// touches a triple store directly, and it reports exactly how many queries
// the alignment cost.

#ifndef SOFYA_ALIGN_RELATION_ALIGNER_H_
#define SOFYA_ALIGN_RELATION_ALIGNER_H_

#include <string>
#include <vector>

#include "align/candidate_finder.h"
#include "endpoint/endpoint.h"
#include "mining/confidence.h"
#include "mining/rule.h"
#include "sameas/sameas_index.h"
#include "sameas/translator.h"
#include "sampling/sampler_options.h"
#include "util/status.h"

namespace sofya {

/// Full aligner configuration.
struct AlignerOptions {
  /// Measure thresholded for acceptance.
  ConfidenceMeasure measure = ConfidenceMeasure::kPca;
  /// Acceptance threshold τ (paper: pca τ>0.3, cwa τ>0.1).
  double threshold = 0.3;
  /// Minimum observed sample pairs for a rule to be judged at all.
  size_t min_pairs = 2;
  /// Minimum *confirmed* pairs (AMIE-style support gate). Rejects rules
  /// whose perfect confidence rests on one or two coincidental pairs.
  size_t min_support = 3;

  /// Run the UBS counter-example pass on surviving candidates.
  bool use_ubs = true;
  /// Also validate the reverse direction to report equivalences.
  bool check_equivalence = true;

  CandidateFinderOptions finder;
  SamplerOptions sampler;
  UbsOptions ubs;
};

/// Verdict for one candidate relation r' against the reference r.
struct CandidateVerdict {
  Term relation;  ///< r' in K'.
  size_t cooccurrences = 0;

  Rule rule;  ///< r' => r with mined statistics.
  /// conf(measure) ≥ τ on the simple sample.
  bool passed_threshold = false;
  /// Killed by UBS case-2 contradictions.
  bool ubs_subsumption_pruned = false;
  /// Final subsumption decision (threshold ∧ ¬pruned).
  bool accepted = false;

  /// Reverse rule r => r' (only populated when check_equivalence and the
  /// forward direction was accepted).
  Rule reverse_rule;
  bool reverse_checked = false;
  bool reverse_passed_threshold = false;
  /// Killed by UBS case-1 contradictions.
  bool ubs_equivalence_pruned = false;
  /// Final equivalence decision.
  bool equivalence = false;
};

/// Result of aligning one reference relation.
struct AlignmentResult {
  Term reference_relation;  ///< r in K.
  std::vector<CandidateVerdict> verdicts;

  /// Query cost of this alignment (deltas over both endpoints).
  uint64_t candidate_queries = 0;
  uint64_t reference_queries = 0;
  uint64_t rows_shipped = 0;
  /// Requests answered by a client-side cache (CachingEndpoint) instead of
  /// the server; zero when no cache is in the endpoint stack.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double simulated_latency_ms = 0.0;

  /// Candidates with accepted subsumption r' => r.
  std::vector<Term> AcceptedSubsumptions() const;
  /// Candidates with accepted equivalence r' <=> r.
  std::vector<Term> AcceptedEquivalences() const;
  /// Total queries against both endpoints.
  uint64_t total_queries() const {
    return candidate_queries + reference_queries;
  }
};

/// The pipeline. One instance per (candidate KB, reference KB) pair; Align
/// may be called for many relations.
class RelationAligner {
 public:
  /// `links` is the sameAs set E. Nothing is owned; all pointers must
  /// outlive the aligner.
  RelationAligner(Endpoint* candidate_kb, Endpoint* reference_kb,
                  const SameAsIndex* links, AlignerOptions options = {});

  /// Aligns reference relation `r`: returns per-candidate verdicts.
  StatusOr<AlignmentResult> Align(const Term& r);

  const AlignerOptions& options() const { return options_; }

 private:
  Endpoint* candidate_kb_;  // K'. Not owned.
  Endpoint* reference_kb_;  // K.  Not owned.
  const SameAsIndex* links_;  // Not owned.
  AlignerOptions options_;
  CrossKbTranslator to_reference_;
  CrossKbTranslator to_candidate_;
};

}  // namespace sofya

#endif  // SOFYA_ALIGN_RELATION_ALIGNER_H_
