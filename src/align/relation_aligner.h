// RelationAligner: the end-to-end on-the-fly alignment pipeline for one
// reference relation.
//
//   discover candidates  ->  simple-sample evidence  ->  confidence
//   threshold  ->  (optional) UBS counter-example pruning  ->  subsumptions
//   + equivalence checks (double subsumption, reverse direction sampled the
//   same way with the KB roles swapped).
//
// Everything flows through the two Endpoint interfaces; the aligner never
// touches a triple store directly, and it reports exactly how many queries
// the alignment cost.

#ifndef SOFYA_ALIGN_RELATION_ALIGNER_H_
#define SOFYA_ALIGN_RELATION_ALIGNER_H_

#include <span>
#include <string>
#include <vector>

#include "align/candidate_finder.h"
#include "endpoint/endpoint.h"
#include "mining/confidence.h"
#include "mining/rule.h"
#include "sameas/sameas_index.h"
#include "sameas/translator.h"
#include "sampling/sampler_options.h"
#include "util/status.h"

namespace sofya {

/// Full aligner configuration.
struct AlignerOptions {
  /// Measure thresholded for acceptance.
  ConfidenceMeasure measure = ConfidenceMeasure::kPca;
  /// Acceptance threshold τ (paper: pca τ>0.3, cwa τ>0.1).
  double threshold = 0.3;
  /// Minimum observed sample pairs for a rule to be judged at all.
  size_t min_pairs = 2;
  /// Minimum *confirmed* pairs (AMIE-style support gate). Rejects rules
  /// whose perfect confidence rests on one or two coincidental pairs.
  size_t min_support = 3;

  /// Run the UBS counter-example pass on surviving candidates.
  bool use_ubs = true;
  /// Also validate the reverse direction to report equivalences.
  bool check_equivalence = true;

  CandidateFinderOptions finder;
  SamplerOptions sampler;
  UbsOptions ubs;
};

/// Verdict for one candidate relation r' against the reference r.
struct CandidateVerdict {
  Term relation;  ///< r' in K'.
  size_t cooccurrences = 0;
  /// PARIS-style discovery prior from the candidate source(s) — how
  /// strongly the source lattice believed in r' *before* any evidence was
  /// sampled. Recorded for EXPLAIN-style output; acceptance is still
  /// decided purely by the sampled confidence.
  double prior = 0.0;

  Rule rule;  ///< r' => r with mined statistics.
  /// conf(measure) ≥ τ on the simple sample.
  bool passed_threshold = false;
  /// Killed by UBS case-2 contradictions.
  bool ubs_subsumption_pruned = false;
  /// Final subsumption decision (threshold ∧ ¬pruned).
  bool accepted = false;

  /// Reverse rule r => r' (only populated when check_equivalence and the
  /// forward direction was accepted).
  Rule reverse_rule;
  bool reverse_checked = false;
  bool reverse_passed_threshold = false;
  /// Killed by UBS case-1 contradictions.
  bool ubs_equivalence_pruned = false;
  /// Final equivalence decision.
  bool equivalence = false;
};

/// Result of aligning one reference relation.
struct AlignmentResult {
  Term reference_relation;  ///< r in K.
  std::vector<CandidateVerdict> verdicts;

  /// Query cost of this alignment. Two attribution regimes, documented here
  /// because they differ under parallelism:
  ///
  ///  * Sequential Align(): counters are before/after stats deltas over the
  ///    endpoint stack — i.e. what the *server* saw for this relation (cache
  ///    hits excluded from `queries`, included in `cache_hits`).
  ///  * AlignMany(): per-relation counters come from a task-private
  ///    TrackingEndpoint — the requests *this relation's pipeline issued*,
  ///    with intra-batch dedup mirrored. That attribution is exact and
  ///    deterministic for any thread count (stats deltas are not, once
  ///    other threads' queries land inside the window), and equals the
  ///    sequential numbers whenever the stack has no shared cache. Shared
  ///    cache/latency quantities are inherently fleet-level under
  ///    parallelism and are reported once in AlignManyResult; the
  ///    per-relation cache_hits/cache_misses/simulated_latency_ms fields
  ///    are then zero.
  uint64_t candidate_queries = 0;
  uint64_t reference_queries = 0;
  uint64_t rows_shipped = 0;
  /// Requests answered by a client-side cache (CachingEndpoint) instead of
  /// the server; zero when no cache is in the endpoint stack.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double simulated_latency_ms = 0.0;

  /// Candidates with accepted subsumption r' => r.
  std::vector<Term> AcceptedSubsumptions() const;
  /// Candidates with accepted equivalence r' <=> r.
  std::vector<Term> AcceptedEquivalences() const;
  /// Total queries against both endpoints.
  uint64_t total_queries() const {
    return candidate_queries + reference_queries;
  }
};

/// How AlignMany carves relations into scheduler tasks.
enum class AlignSchedule {
  /// Phase-decomposed (default): each relation becomes a chain of
  /// phase-level subtasks — candidate discovery, then one sampling subtask
  /// per candidate, then the UBS probe wave, then one reverse-check subtask
  /// per accepted candidate — scheduled on a shared work-stealing pool.
  /// When one giant relation dominates the schema, its per-candidate
  /// subtasks spread across every idle worker instead of serializing the
  /// tail behind a single thread.
  kPhase,
  /// One monolithic task per relation (the pre-phase scheduler): simplest
  /// attribution, but a skewed schema leaves N-1 workers idle while the
  /// giant relation finishes. Kept for comparison benchmarks.
  kRelation,
};

/// Derives per-component RNG seeds (candidate finder, samplers) from one
/// run-level seed, so a CLI `--seed N` reproduces an entire run without the
/// components sharing a stream. `seed == 0` is the "unset" sentinel and
/// leaves the defaults untouched.
void ApplyRunSeed(AlignerOptions* options, uint64_t seed);

/// AlignMany configuration.
struct AlignManyOptions {
  size_t num_threads = 1;
  AlignSchedule schedule = AlignSchedule::kPhase;
};

/// Result of a fleet alignment (AlignMany).
struct AlignManyResult {
  /// Per-relation results, in input order: results[i] aligns relations[i].
  std::vector<AlignmentResult> results;

  /// Fleet-level access accounting: stats deltas over each endpoint taken
  /// once around the whole fan-out (snapshot before the first task starts,
  /// snapshot after the last joins — race-free by construction). This is
  /// where shared-cache hits and simulated latency live; `queries` here is
  /// what the server actually saw, which with a shared cache can be LESS
  /// than the sum of the per-relation request counts.
  EndpointStats candidate_stats;
  EndpointStats reference_stats;

  double wall_ms = 0.0;
  size_t threads_used = 1;

  /// Scheduler tasks executed: relations.size() under kRelation, the total
  /// number of phase subtasks under kPhase (discovery + per-candidate
  /// sampling + UBS + per-accepted reverse checks).
  size_t subtasks_scheduled = 0;

  /// Server-seen queries over both endpoints.
  uint64_t total_queries() const {
    return candidate_stats.queries + reference_stats.queries;
  }
};

/// The pipeline. One instance per (candidate KB, reference KB) pair; Align
/// may be called for many relations.
///
/// Thread safety: Align holds no mutable aligner state across calls (the
/// samplers are per-call locals), so concurrent Align calls are safe when
/// the endpoints are — which is what AlignMany exploits.
class RelationAligner {
 public:
  /// `links` is the sameAs set E. Nothing is owned; all pointers must
  /// outlive the aligner.
  RelationAligner(Endpoint* candidate_kb, Endpoint* reference_kb,
                  const SameAsIndex* links, AlignerOptions options = {});

  /// Aligns reference relation `r`: returns per-candidate verdicts.
  StatusOr<AlignmentResult> Align(const Term& r);

  /// Aligns many reference relations on a shared work-stealing pool of
  /// `options.num_threads` workers. Under the default kPhase schedule each
  /// relation is decomposed into phase-level subtasks (see AlignSchedule),
  /// so a schema where one giant relation dominates no longer serializes
  /// the tail behind one worker; kRelation keeps the one-task-per-relation
  /// monolith. The endpoint stack underneath must be thread-safe (every
  /// endpoint in this repo is).
  ///
  /// Determinism guarantee (both schedules, any thread count): per-relation
  /// verdicts and per-relation query counts are bit-identical to sequential
  /// Align, because every subtask is a pure function of (relation,
  /// candidate, options) — it depends only on query *results* (identical no
  /// matter who warmed a shared cache), results land in pre-assigned
  /// input-order slots, and counters come from a relation-private
  /// thread-safe TrackingEndpoint whose per-call charges are
  /// order-independent sums (see AlignmentResult). On error the first
  /// failing relation *by input order* is reported — and within a relation
  /// the first failing subtask by phase-then-candidate order — not the
  /// first to fail in wall-clock order.
  ///
  /// Caveat: the guarantee assumes the endpoint stack answers a given query
  /// the same way every time. A finite ThrottleOptions::query_budget or
  /// failure_rate > 0 breaks that — admission happens in wall-clock
  /// interleaving order, so *which* relation exhausts the budget (or eats
  /// an un-retried injected failure) varies across runs. Parallel runs
  /// against metered stacks are still safe, just not reproducible past the
  /// first ResourceExhausted/Unavailable.
  StatusOr<AlignManyResult> AlignMany(std::span<const Term> relations,
                                      const AlignManyOptions& options);

  /// Convenience overload: phase schedule at `num_threads` workers.
  StatusOr<AlignManyResult> AlignMany(std::span<const Term> relations,
                                      size_t num_threads) {
    AlignManyOptions options;
    options.num_threads = num_threads;
    return AlignMany(relations, options);
  }

  const AlignerOptions& options() const { return options_; }

 private:
  friend struct RelationRun;  // The phase scheduler's per-relation state.

  // The four phases of one relation's alignment. Align() composes them
  // sequentially; the kPhase scheduler runs them as subtasks. Each is a
  // pure function of its arguments over the aligner's endpoints, which is
  // what makes the two compositions bit-identical.

  /// Phase 1: candidate discovery.
  StatusOr<std::vector<CandidateRelation>> DiscoverPhase(const Term& r);

  /// Phase 2 (per candidate): simple-sample evidence + threshold verdict.
  StatusOr<CandidateVerdict> ScorePhase(const Term& r,
                                        const CandidateRelation& candidate);

  /// Phase 3: the UBS counter-example wave over the threshold survivors;
  /// sets the pruned flags and the final `accepted` bit on every verdict.
  Status UbsPhase(const Term& r, std::vector<CandidateVerdict>* verdicts);

  /// Phase 4 (per accepted candidate): reverse direction for equivalence.
  Status ReversePhase(const Term& r, CandidateVerdict* verdict);

  /// The kPhase scheduler behind AlignMany.
  StatusOr<AlignManyResult> AlignManyPhased(std::span<const Term> relations,
                                            size_t num_threads);
  /// The kRelation (monolith-task) scheduler behind AlignMany.
  StatusOr<AlignManyResult> AlignManyMonolith(std::span<const Term> relations,
                                              size_t num_threads);

  Endpoint* candidate_kb_;  // K'. Not owned.
  Endpoint* reference_kb_;  // K.  Not owned.
  const SameAsIndex* links_;  // Not owned.
  AlignerOptions options_;
  CrossKbTranslator to_reference_;
  CrossKbTranslator to_candidate_;
};

}  // namespace sofya

#endif  // SOFYA_ALIGN_RELATION_ALIGNER_H_
