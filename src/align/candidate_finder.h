// CandidateFinder: discover candidate relations r' in the candidate KB K'
// for a reference relation r in K.
//
// Paper, Section 2.1: "Candidate relations r' may be found by sampling
// r(x,y), then considering all r' such that r'(x,y) for some sample."
// Concretely: sample r facts from K, translate both ends through sameAs
// into K', and ask K' which predicates connect the translated pair
// (SELECT ?p WHERE { <x1> ?p <y1> }). For entity-literal relations the
// object is matched by string similarity against the translated subject's
// facts instead.

#ifndef SOFYA_ALIGN_CANDIDATE_FINDER_H_
#define SOFYA_ALIGN_CANDIDATE_FINDER_H_

#include <cstdint>
#include <vector>

#include "endpoint/endpoint.h"
#include "sameas/translator.h"
#include "similarity/literal_matcher.h"
#include "util/status.h"

namespace sofya {

/// Candidate discovery configuration.
struct CandidateFinderOptions {
  /// Reference facts to probe (after shuffling the scan window).
  size_t sample_facts = 30;
  /// Size of the scanned r-fact window.
  size_t scan_limit = 300;
  /// Keep at most this many candidates (by descending co-occurrence).
  size_t max_candidates = 8;
  /// Require at least this many co-occurring sample pairs.
  size_t min_cooccurrence = 1;
  uint64_t seed = 23;
  size_t page_size = 250;
  LiteralMatcherOptions literal_options;
};

/// One discovered candidate.
struct CandidateRelation {
  Term relation;            ///< r' in K'.
  size_t cooccurrences = 0; ///< Sampled r pairs this relation connected.
};

/// Discovery engine.
class CandidateFinder {
 public:
  /// `to_candidate` must translate K terms into K'. Nothing is owned.
  CandidateFinder(Endpoint* candidate_kb, Endpoint* reference_kb,
                  const CrossKbTranslator* to_candidate,
                  CandidateFinderOptions options = {});

  /// Finds candidates for reference relation `r`, ordered by descending
  /// co-occurrence count (ties broken by IRI for determinism).
  StatusOr<std::vector<CandidateRelation>> FindCandidates(const Term& r);

 private:
  Endpoint* candidate_kb_;   // K'. Not owned.
  Endpoint* reference_kb_;   // K.  Not owned.
  const CrossKbTranslator* to_candidate_;  // Not owned.
  CandidateFinderOptions options_;
  LiteralMatcher literal_matcher_;
};

}  // namespace sofya

#endif  // SOFYA_ALIGN_CANDIDATE_FINDER_H_
