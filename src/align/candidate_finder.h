// CandidateFinder: discover candidate relations r' in the candidate KB K'
// for a reference relation r in K.
//
// Paper, Section 2.1: "Candidate relations r' may be found by sampling
// r(x,y), then considering all r' such that r'(x,y) for some sample."
// That recipe is now one of several pluggable sources (see
// align/candidate_source.h): the finder orchestrates whichever source(s)
// CandidateFinderOptions::source selects — the paper's sameAs-overlap
// sampler, the MinHash/LSH lexical index, the distribution-profile scorer,
// or the PARIS-style composite of all three — and folds per-source scores
// into the `prior` each CandidateRelation carries into the evidence loop.

#ifndef SOFYA_ALIGN_CANDIDATE_FINDER_H_
#define SOFYA_ALIGN_CANDIDATE_FINDER_H_

#include <vector>

#include "align/candidate_source.h"
#include "endpoint/endpoint.h"
#include "sameas/translator.h"
#include "util/status.h"

namespace sofya {

/// Discovery orchestrator. CandidateFinderOptions, CandidateRelation and
/// the sources themselves live in align/candidate_source.h.
class CandidateFinder {
 public:
  /// `to_candidate` must translate K terms into K'. Nothing is owned.
  CandidateFinder(Endpoint* candidate_kb, Endpoint* reference_kb,
                  const CrossKbTranslator* to_candidate,
                  CandidateFinderOptions options = {});

  /// Finds candidates for reference relation `r` via the configured
  /// source. Under the default kSameAs source the candidate list, its
  /// order and the queries issued are bit-identical to the pre-refactor
  /// finder (co-occurrence descending, IRI ties).
  StatusOr<std::vector<CandidateRelation>> FindCandidates(const Term& r);

 private:
  Endpoint* candidate_kb_;   // K'. Not owned.
  Endpoint* reference_kb_;   // K.  Not owned.
  const CrossKbTranslator* to_candidate_;  // Not owned.
  CandidateFinderOptions options_;
};

}  // namespace sofya

#endif  // SOFYA_ALIGN_CANDIDATE_FINDER_H_
