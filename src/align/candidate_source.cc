#include "align/candidate_source.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "similarity/string_metrics.h"
#include "util/hash.h"
#include "util/random.h"

namespace sofya {
namespace {

/// Entries kept before the cache sheds its epoch tail. One aligner run
/// needs at most a handful of keys (one per endpoint direction per epoch).
constexpr size_t kLexicalCacheCap = 16;

/// Sorts scored candidates by descending score with ascending-IRI ties and
/// truncates to the option cap — the shared ranking contract of every
/// source.
void RankAndTruncate(std::vector<ScoredCandidate>* scored,
                     size_t max_candidates) {
  std::stable_sort(scored->begin(), scored->end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.relation < b.relation;
                   });
  if (scored->size() > max_candidates) scored->resize(max_candidates);
}

/// The candidate endpoint's predicate inventory: every IRI predicate,
/// sorted + deduplicated. One paged query per call — issued through the
/// caller's (possibly relation-private) endpoint so per-relation query
/// accounting stays exact; any caching layer in the stack dedups the
/// repeats server-side.
StatusOr<std::vector<Term>> FetchPredicateInventory(Endpoint* endpoint,
                                                    size_t page_size) {
  PagedSelectOptions page_options;
  page_options.page_size = page_size;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet rows,
      PagedSelect(endpoint, queries::AllPredicates(), page_options));
  std::vector<Term> inventory;
  inventory.reserve(rows.rows.size());
  for (const auto& row : rows.rows) {
    if (row.empty() || row[0] == kNullTermId) continue;
    SOFYA_ASSIGN_OR_RETURN(Term term, endpoint->DecodeTerm(row[0]));
    if (term.is_iri()) inventory.push_back(std::move(term));
  }
  std::sort(inventory.begin(), inventory.end());
  inventory.erase(std::unique(inventory.begin(), inventory.end()),
                  inventory.end());
  return inventory;
}

/// Cache key of a lexical index: endpoint epoch + LSH shape + inventory.
uint64_t LexicalIndexKey(uint64_t data_epoch, const MinHashLshOptions& lsh,
                         const std::vector<Term>& inventory) {
  uint64_t key = Fnv1a(&data_epoch, sizeof(data_epoch));
  const uint64_t shape[4] = {lsh.ngram, lsh.num_hashes, lsh.bands, lsh.seed};
  key ^= Fnv1a(shape, sizeof(shape)) * 0x9e3779b97f4a7c15ULL;
  for (const Term& t : inventory) {
    key = key * 1099511628211ULL ^
          Fnv1a(t.lexical().data(), t.lexical().size());
  }
  return key;
}

}  // namespace

StatusOr<CandidateSourceKind> ParseCandidateSourceKind(std::string_view name) {
  if (name == "sameas") return CandidateSourceKind::kSameAs;
  if (name == "lexical") return CandidateSourceKind::kLexical;
  if (name == "distribution") return CandidateSourceKind::kDistribution;
  if (name == "auto") return CandidateSourceKind::kAuto;
  return Status::InvalidArgument(
      "unknown candidate source '" + std::string(name) +
      "' (sameas|lexical|distribution|auto)");
}

const char* CandidateSourceKindName(CandidateSourceKind kind) {
  switch (kind) {
    case CandidateSourceKind::kSameAs: return "sameas";
    case CandidateSourceKind::kLexical: return "lexical";
    case CandidateSourceKind::kDistribution: return "distribution";
    case CandidateSourceKind::kAuto: return "auto";
  }
  return "unknown";
}

LexicalIndexCache::IndexPtr LexicalIndexCache::GetOrBuild(
    uint64_t key, const std::function<IndexPtr()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  // Build under the lock: one build per key per epoch, concurrent
  // relations wait for it instead of racing duplicate O(P) builds.
  IndexPtr index = build();
  if (entries_.size() >= kLexicalCacheCap) entries_.clear();  // Epoch tail.
  entries_.emplace(key, index);
  ++builds_;
  return index;
}

uint64_t LexicalIndexCache::builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builds_;
}

uint64_t LexicalIndexCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

// ---------------------------------------------------------------------------
// SameAsOverlapSource
// ---------------------------------------------------------------------------

SameAsOverlapSource::SameAsOverlapSource(Endpoint* candidate_kb,
                                         Endpoint* reference_kb,
                                         const CrossKbTranslator* to_candidate,
                                         const CandidateFinderOptions& options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_candidate_(to_candidate),
      options_(options),
      literal_matcher_(options.literal_options) {}

StatusOr<std::vector<ScoredCandidate>> SameAsOverlapSource::Discover(
    const Term& r) {
  // The pre-refactor CandidateFinder::FindCandidates body, moved verbatim:
  // identical queries in identical order, so the refactor is query-count-
  // invisible (regression-tested against a frozen copy of the old code).
  std::vector<ScoredCandidate> result;
  const TermId r_id = reference_kb_->LookupTerm(r);
  if (r_id == kNullTermId) return result;

  // Scan + shuffle a window of r facts.
  PagedSelectOptions page_options;
  page_options.page_size = options_.page_size;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet window,
      PagedSelect(reference_kb_,
                  queries::FactsOfPredicate(r_id, options_.scan_limit),
                  page_options));
  if (window.rows.empty()) return result;

  std::vector<size_t> order(window.rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options_.seed ^
          Fnv1a(r.lexical().data(), r.lexical().size()));
  Shuffle(rng, order);

  // Majority kind vote over the window's objects.
  size_t literal_objects = 0;
  for (const auto& row : window.rows) {
    SOFYA_ASSIGN_OR_RETURN(Term obj, reference_kb_->DecodeTerm(row[1]));
    if (obj.is_literal()) ++literal_objects;
  }
  const bool literal_relation = literal_objects * 2 >= window.rows.size();

  // Qualify sampled facts into probe queries. Qualification (sameAs
  // translation + id lookup) is client-side, so the whole probe set is known
  // before the endpoint is touched — one batch instead of one query per
  // sampled fact, which lets the endpoint stack dedup and cache them.
  struct Probe {
    bool literal;
    Term y2;  // Reference object for literal matching.
  };
  std::vector<Probe> probes;
  std::vector<SelectQuery> probe_queries;
  for (size_t idx : order) {
    if (probes.size() >= options_.sample_facts) break;
    const auto& row = window.rows[idx];
    SOFYA_ASSIGN_OR_RETURN(Term x2, reference_kb_->DecodeTerm(row[0]));
    SOFYA_ASSIGN_OR_RETURN(Term y2, reference_kb_->DecodeTerm(row[1]));

    auto x1 = to_candidate_->Translate(x2);
    if (!x1.ok()) continue;

    if (literal_relation) {
      if (!y2.is_literal()) continue;
      const TermId x1_id = candidate_kb_->LookupTerm(*x1);
      if (x1_id == kNullTermId) continue;
      probes.push_back(Probe{true, y2});
      probe_queries.push_back(queries::FactsOfSubject(x1_id));
      continue;
    }

    auto y1 = to_candidate_->Translate(y2);
    if (!y1.ok()) continue;
    const TermId x1_id = candidate_kb_->LookupTerm(*x1);
    const TermId y1_id = candidate_kb_->LookupTerm(*y1);
    if (x1_id == kNullTermId || y1_id == kNullTermId) continue;
    probes.push_back(Probe{false, Term()});
    probe_queries.push_back(queries::PredicatesBetween(x1_id, y1_id));
  }

  std::map<Term, size_t> counts;  // Ordered: deterministic ties.
  // Every probe answer is needed to score co-occurrence deterministically,
  // so a sub-query that still fails after the stack's per-slot recovery
  // fails the discovery (first error by batch position).
  SOFYA_ASSIGN_OR_RETURN(
      std::vector<ResultSet> probe_results,
      candidate_kb_->SelectMany(probe_queries).IntoValues());
  for (size_t i = 0; i < probes.size(); ++i) {
    const ResultSet& rows = probe_results[i];
    if (probes[i].literal) {
      std::unordered_set<TermId> credited;
      for (const auto& fact_row : rows.rows) {
        SOFYA_ASSIGN_OR_RETURN(Term obj,
                               candidate_kb_->DecodeTerm(fact_row[1]));
        if (!obj.is_literal()) continue;
        if (!literal_matcher_.Matches(obj, probes[i].y2)) continue;
        if (!credited.insert(fact_row[0]).second) continue;
        SOFYA_ASSIGN_OR_RETURN(Term predicate,
                               candidate_kb_->DecodeTerm(fact_row[0]));
        ++counts[predicate];
      }
      continue;
    }
    for (const auto& p_row : rows.rows) {
      SOFYA_ASSIGN_OR_RETURN(Term predicate,
                             candidate_kb_->DecodeTerm(p_row[0]));
      ++counts[predicate];
    }
  }

  for (const auto& [relation, count] : counts) {
    if (count < options_.min_cooccurrence) continue;
    // Score: co-occurrence as a fraction of the probe budget. The ranking
    // below still keys on the raw count (score is monotone in it), so the
    // candidate order matches the pre-refactor finder exactly.
    const double score = std::min(
        1.0, static_cast<double>(count) /
                 static_cast<double>(std::max<size_t>(1, options_.sample_facts)));
    result.push_back(ScoredCandidate{relation, score, count});
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.cooccurrences != b.cooccurrences) {
                       return a.cooccurrences > b.cooccurrences;
                     }
                     return a.relation < b.relation;
                   });
  if (result.size() > options_.max_candidates) {
    result.resize(options_.max_candidates);
  }
  return result;
}

// ---------------------------------------------------------------------------
// LexicalIndexSource
// ---------------------------------------------------------------------------

LexicalIndexSource::LexicalIndexSource(Endpoint* candidate_kb,
                                       const CandidateFinderOptions& options)
    : candidate_kb_(candidate_kb),
      options_(options),
      cache_(options.lexical_cache != nullptr
                 ? options.lexical_cache
                 : std::make_shared<LexicalIndexCache>()) {}

StatusOr<LexicalIndexCache::IndexPtr> LexicalIndexSource::GetIndex() {
  SOFYA_ASSIGN_OR_RETURN(
      std::vector<Term> inventory,
      FetchPredicateInventory(candidate_kb_, options_.page_size));
  last_inventory_size_ = inventory.size();
  const uint64_t key =
      LexicalIndexKey(candidate_kb_->data_epoch(), options_.lsh, inventory);
  return cache_->GetOrBuild(key, [&]() -> LexicalIndexCache::IndexPtr {
    auto index = std::make_shared<LexicalRelationIndex>(options_.lsh);
    index->relations.reserve(inventory.size());
    index->labels.reserve(inventory.size());
    index->signatures.reserve(inventory.size());
    for (size_t i = 0; i < inventory.size(); ++i) {
      std::string label = RelationLabel(inventory[i].lexical());
      index->signatures.push_back(index->lsh.Signature(label));
      index->lsh.Insert(static_cast<uint32_t>(i), label);
      index->labels.push_back(std::move(label));
      index->relations.push_back(inventory[i]);
    }
    return index;
  });
}

StatusOr<std::vector<ScoredCandidate>> LexicalIndexSource::Discover(
    const Term& r) {
  SOFYA_ASSIGN_OR_RETURN(LexicalIndexCache::IndexPtr index, GetIndex());
  const std::string label = RelationLabel(r.lexical());
  const std::vector<uint32_t> signature = index->lsh.Signature(label);

  std::vector<ScoredCandidate> scored;
  const std::vector<uint32_t> ids =
      index->lsh.Lookup(label, &last_lookup_stats_);
  for (uint32_t id : ids) {
    // Rank bucket mates by a blend of the signature's Jaccard estimate and
    // the exact bigram Dice of the two labels: the signature carries the
    // set-overlap shape, the Dice term breaks estimator noise on the short
    // strings relation labels are.
    const double similarity =
        0.5 * MinHashLsh::SignatureSimilarity(signature,
                                              index->signatures[id]) +
        0.5 * BigramDice(label, index->labels[id]);
    if (similarity < options_.min_lexical_score) continue;
    scored.push_back(ScoredCandidate{index->relations[id], similarity, 0});
  }
  RankAndTruncate(&scored, options_.max_candidates);
  return scored;
}

// ---------------------------------------------------------------------------
// DistributionSource
// ---------------------------------------------------------------------------

DistributionSource::DistributionSource(Endpoint* candidate_kb,
                                       Endpoint* reference_kb,
                                       const CandidateFinderOptions& options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      options_(options) {}

namespace {

DistributionSource::Profile ProfileFromRows(Endpoint* endpoint,
                                            const ResultSet& rows,
                                            Status* status) {
  DistributionSource::Profile profile;
  if (rows.rows.empty()) return profile;
  std::map<TermId, size_t> subject_counts;  // Ordered: deterministic.
  std::unordered_set<TermId> objects;
  size_t literals = 0;
  for (const auto& row : rows.rows) {
    ++subject_counts[row[0]];
    objects.insert(row[1]);
    auto obj = endpoint->DecodeTerm(row[1]);
    if (!obj.ok()) {
      *status = obj.status();
      return profile;
    }
    if (obj->is_literal()) ++literals;
  }
  const double facts = static_cast<double>(rows.rows.size());
  size_t top_subject = 0;
  for (const auto& [id, count] : subject_counts) {
    top_subject = std::max(top_subject, count);
  }
  profile.valid = true;
  profile.functionality = static_cast<double>(subject_counts.size()) / facts;
  profile.inverse_functionality = static_cast<double>(objects.size()) / facts;
  profile.literal_fraction = static_cast<double>(literals) / facts;
  profile.top_subject_share = static_cast<double>(top_subject) / facts;
  return profile;
}

}  // namespace

StatusOr<DistributionSource::Profile> DistributionSource::BuildProfile(
    Endpoint* endpoint, const Term& relation) {
  const TermId id = endpoint->LookupTerm(relation);
  if (id == kNullTermId) return Profile{};
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet rows,
      endpoint->Select(
          queries::FactsOfPredicate(id, options_.distribution_window)));
  Status status = Status::OK();
  Profile profile = ProfileFromRows(endpoint, rows, &status);
  SOFYA_RETURN_IF_ERROR(status);
  return profile;
}

StatusOr<std::vector<DistributionSource::Profile>>
DistributionSource::BuildProfiles(Endpoint* endpoint,
                                  const std::vector<Term>& pool) {
  // One batched round trip for every resolvable pool member; unresolvable
  // relations keep the invalid default profile (score 0 downstream).
  std::vector<Profile> profiles(pool.size());
  std::vector<size_t> slots;
  std::vector<SelectQuery> queries;
  for (size_t i = 0; i < pool.size(); ++i) {
    const TermId id = endpoint->LookupTerm(pool[i]);
    if (id == kNullTermId) continue;
    slots.push_back(i);
    queries.push_back(
        queries::FactsOfPredicate(id, options_.distribution_window));
  }
  if (queries.empty()) return profiles;
  SOFYA_ASSIGN_OR_RETURN(std::vector<ResultSet> results,
                         endpoint->SelectMany(queries).IntoValues());
  for (size_t j = 0; j < slots.size(); ++j) {
    Status status = Status::OK();
    profiles[slots[j]] = ProfileFromRows(endpoint, results[j], &status);
    SOFYA_RETURN_IF_ERROR(status);
  }
  return profiles;
}

double DistributionSource::Similarity(const Profile& a, const Profile& b) {
  if (!a.valid || !b.valid) return 0.0;
  // Product of per-feature agreements: one strongly disagreeing feature
  // (entity-range vs literal-range, functional vs many-valued) collapses
  // the score even when the others agree.
  const double score =
      (1.0 - std::abs(a.functionality - b.functionality)) *
      (1.0 - std::abs(a.inverse_functionality - b.inverse_functionality)) *
      (1.0 - std::abs(a.literal_fraction - b.literal_fraction)) *
      (1.0 - std::abs(a.top_subject_share - b.top_subject_share));
  return std::clamp(score, 0.0, 1.0);
}

StatusOr<std::vector<double>> DistributionSource::ScorePool(
    const Term& r, const std::vector<Term>& pool) {
  SOFYA_ASSIGN_OR_RETURN(Profile reference_profile,
                         BuildProfile(reference_kb_, r));
  SOFYA_ASSIGN_OR_RETURN(std::vector<Profile> profiles,
                         BuildProfiles(candidate_kb_, pool));
  std::vector<double> scores(pool.size(), 0.0);
  for (size_t i = 0; i < pool.size(); ++i) {
    scores[i] = Similarity(reference_profile, profiles[i]);
  }
  return scores;
}

StatusOr<std::vector<ScoredCandidate>> DistributionSource::Discover(
    const Term& r) {
  SOFYA_ASSIGN_OR_RETURN(
      std::vector<Term> inventory,
      FetchPredicateInventory(candidate_kb_, options_.page_size));
  // Deterministic pool cap: the inventory is sorted, take the prefix. A
  // standalone distribution run over a huge schema should raise the cap or
  // compose with a pre-filtering source (kAuto does).
  if (inventory.size() > options_.distribution_pool_limit) {
    inventory.resize(options_.distribution_pool_limit);
  }
  SOFYA_ASSIGN_OR_RETURN(std::vector<double> scores, ScorePool(r, inventory));
  std::vector<ScoredCandidate> scored;
  for (size_t i = 0; i < inventory.size(); ++i) {
    if (scores[i] < options_.min_distribution_score) continue;
    scored.push_back(ScoredCandidate{inventory[i], scores[i], 0});
  }
  RankAndTruncate(&scored, options_.max_candidates);
  return scored;
}

// ---------------------------------------------------------------------------
// CompositeCandidateSource
// ---------------------------------------------------------------------------

CompositeCandidateSource::CompositeCandidateSource(
    Endpoint* candidate_kb, Endpoint* reference_kb,
    const CrossKbTranslator* to_candidate,
    const CandidateFinderOptions& options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_candidate_(to_candidate),
      options_(options) {}

StatusOr<std::vector<ScoredCandidate>> CompositeCandidateSource::Discover(
    const Term& r) {
  SameAsOverlapSource sameas(candidate_kb_, reference_kb_, to_candidate_,
                             options_);
  LexicalIndexSource lexical(candidate_kb_, options_);
  SOFYA_ASSIGN_OR_RETURN(std::vector<ScoredCandidate> sameas_scored,
                         sameas.Discover(r));
  SOFYA_ASSIGN_OR_RETURN(std::vector<ScoredCandidate> lexical_scored,
                         lexical.Discover(r));

  // Union pool, ordered by IRI for deterministic batching downstream.
  std::map<Term, ScoredCandidate> pool;
  for (const ScoredCandidate& c : sameas_scored) pool[c.relation] = c;
  for (const ScoredCandidate& c : lexical_scored) {
    auto [it, inserted] = pool.emplace(c.relation, c);
    if (!inserted) {
      // Already proposed by sameAs: remember the lexical score by folding
      // it into the prior below (stored transiently in `score`).
      it->second.score = 1.0 - (1.0 - options_.sameas_weight *
                                          it->second.score) *
                                   (1.0 - options_.lexical_weight * c.score);
    }
  }
  // Normalize single-source members into partial priors too.
  for (auto& [relation, c] : pool) {
    const bool from_both =
        std::any_of(sameas_scored.begin(), sameas_scored.end(),
                    [&](const ScoredCandidate& s) {
                      return s.relation == relation;
                    }) &&
        std::any_of(lexical_scored.begin(), lexical_scored.end(),
                    [&](const ScoredCandidate& s) {
                      return s.relation == relation;
                    });
    if (from_both) continue;  // Combined above.
    const bool from_sameas = c.cooccurrences > 0;
    const double weight =
        from_sameas ? options_.sameas_weight : options_.lexical_weight;
    c.score = weight * c.score;
  }

  // Third signal: distribution similarity over the whole pool, one batch.
  std::vector<Term> pool_terms;
  pool_terms.reserve(pool.size());
  for (const auto& [relation, c] : pool) pool_terms.push_back(relation);
  DistributionSource distribution(candidate_kb_, reference_kb_, options_);
  SOFYA_ASSIGN_OR_RETURN(std::vector<double> distribution_scores,
                         distribution.ScorePool(r, pool_terms));

  std::vector<ScoredCandidate> combined;
  combined.reserve(pool.size());
  size_t i = 0;
  for (auto& [relation, c] : pool) {
    const double prior =
        1.0 - (1.0 - c.score) *
                  (1.0 - options_.distribution_weight * distribution_scores[i]);
    ++i;
    if (prior <= 0.0) continue;
    combined.push_back(ScoredCandidate{relation, prior, c.cooccurrences});
  }
  RankAndTruncate(&combined, options_.max_candidates);
  return combined;
}

}  // namespace sofya
