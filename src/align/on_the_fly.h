// OnTheFlyAligner: query-time alignment facade with memoization, plus
// cross-KB query rewriting.
//
// This is the deployment story of the paper's introduction: a query arrives
// mentioning relations of the reference KB; equivalent/subsumed relations
// in another endpoint are discovered *during query execution* (first use
// pays the few-queries alignment cost, later uses hit the cache), and the
// query is rewritten to run against the other dataset.

#ifndef SOFYA_ALIGN_ON_THE_FLY_H_
#define SOFYA_ALIGN_ON_THE_FLY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "align/relation_aligner.h"
#include "sparql/query.h"

namespace sofya {

/// Memoizing wrapper around RelationAligner + a query rewriter.
class OnTheFlyAligner {
 public:
  /// Same ownership rules as RelationAligner (nothing owned).
  OnTheFlyAligner(Endpoint* candidate_kb, Endpoint* reference_kb,
                  const SameAsIndex* links, AlignerOptions options = {});

  /// Aligns `r`, reusing a cached result when available. The pointer stays
  /// valid until ClearCache() or destruction.
  StatusOr<const AlignmentResult*> AlignCached(const Term& r);

  /// Aligns many relations at once: cached results are reused, the
  /// remaining (distinct) relations fan out across `num_threads` workers
  /// via RelationAligner::AlignMany (phase-decomposed by default; pass
  /// `schedule` to compare against whole-relation tasks), and everything
  /// lands in the memo cache. Returned pointers are in input order
  /// (duplicates map to the same entry) and stay valid until ClearCache()
  /// or destruction.
  ///
  /// The memo itself is touched only before and after the parallel region,
  /// so this method is safe without making the cache concurrent — but like
  /// every other OnTheFlyAligner method it must not be called from multiple
  /// threads at once.
  StatusOr<std::vector<const AlignmentResult*>> AlignManyCached(
      std::span<const Term> relations, size_t num_threads,
      AlignSchedule schedule = AlignSchedule::kPhase);

  /// The best candidate relation for `r`: an accepted equivalence if any
  /// (highest confidence), else the highest-confidence accepted
  /// subsumption; NotFound when nothing was accepted.
  StatusOr<Term> BestCandidateFor(const Term& r);

  /// Rewrites a query formulated against the reference KB into the
  /// candidate KB: constant predicates are replaced by their best aligned
  /// candidate relation, constant entities are translated through sameAs,
  /// literals pass through. Fails with NotFound when some predicate has no
  /// accepted alignment.
  StatusOr<SelectQuery> RewriteQuery(const SelectQuery& reference_query);

  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.clear(); }

  /// Total alignments performed (cache misses).
  size_t alignments_performed() const { return alignments_performed_; }

 private:
  Endpoint* candidate_kb_;  // Not owned.
  Endpoint* reference_kb_;  // Not owned.
  RelationAligner aligner_;
  CrossKbTranslator to_candidate_;
  std::unordered_map<Term, AlignmentResult, TermHash> cache_;
  size_t alignments_performed_ = 0;
};

}  // namespace sofya

#endif  // SOFYA_ALIGN_ON_THE_FLY_H_
