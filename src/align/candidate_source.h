// Pluggable candidate discovery for relation alignment.
//
// Paper, Section 2.1 gives ONE way to find candidate relations r' for a
// reference relation r: sample r(x,y), translate the pair through sameAs
// into K', and ask which predicates connect it. That recipe needs
// entity-level sameAs links — the very thing the interesting scenarios
// (PARIS-style probabilistic alignment, FLORA's unsupervised setting,
// cross-lingual KBs) don't have. This header turns discovery into a
// pluggable layer with three sources plus a combiner:
//
//   * SameAsOverlapSource   — the paper's sampler, verbatim (the refactor
//                             is regression-tested to be verdict- and
//                             query-count-identical to the old finder);
//   * LexicalIndexSource    — character-n-gram MinHash/LSH over the
//                             candidate endpoint's predicate inventory
//                             (similarity/minhash_lsh.h): sub-linear label
//                             lookup, needs zero links;
//   * DistributionSource    — head/tail distribution + functionality
//                             profile similarity, observed through
//                             endpoint queries only (no embeddings);
//   * CompositeCandidateSource — PARIS-style noisy-or combination
//                             prior(r') = 1 - prod_s (1 - w_s * score_s)
//                             over whichever sources produced a score.
//
// The prior seeds the existing UBS evidence loop: discovery proposes,
// sampling + confidence + UBS still decide. Every source talks to the KBs
// exclusively through the Endpoint interface and is a deterministic
// function of (relation, options, query results), which is what keeps
// AlignMany bit-identical across thread counts and schedules.
//
// The lexical index is built lazily from the candidate endpoint's
// predicate inventory and memoized in a LexicalIndexCache shared across
// one aligner's relations; entries are keyed by (data_epoch, options,
// inventory hash), so a KB mutation invalidates them exactly like the
// engine's plan cache.

#ifndef SOFYA_ALIGN_CANDIDATE_SOURCE_H_
#define SOFYA_ALIGN_CANDIDATE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "endpoint/endpoint.h"
#include "sameas/translator.h"
#include "similarity/literal_matcher.h"
#include "similarity/minhash_lsh.h"
#include "util/status.h"

namespace sofya {

/// Which discovery source the finder orchestrates.
enum class CandidateSourceKind {
  kSameAs,        ///< Entity-pair overlap through sameAs (the paper).
  kLexical,       ///< MinHash/LSH label similarity.
  kDistribution,  ///< Head/tail + functionality profile similarity.
  kAuto,          ///< All of the above, noisy-or combined.
};

/// "sameas" | "lexical" | "distribution" | "auto".
StatusOr<CandidateSourceKind> ParseCandidateSourceKind(std::string_view name);
const char* CandidateSourceKindName(CandidateSourceKind kind);

/// One immutable lexical index over a predicate inventory: the LSH buckets
/// plus the per-predicate labels and signatures lookups are scored with.
struct LexicalRelationIndex {
  explicit LexicalRelationIndex(MinHashLshOptions options) : lsh(options) {}
  MinHashLsh lsh;
  std::vector<Term> relations;                   ///< id -> predicate.
  std::vector<std::string> labels;               ///< id -> RelationLabel.
  std::vector<std::vector<uint32_t>> signatures; ///< id -> MinHash.
};

/// Thread-safe memo of built lexical indexes, shared by every relation of
/// one aligner run (AlignMany's child aligners copy the owning shared_ptr
/// through AlignerOptions). Keys fold in the endpoint's data_epoch and the
/// inventory hash, so stale indexes are never served; a small cap bounds
/// the epoch tail.
class LexicalIndexCache {
 public:
  using IndexPtr = std::shared_ptr<const LexicalRelationIndex>;

  /// Returns the cached index for `key`, building (and memoizing) it via
  /// `build` on a miss. The build runs under the cache lock: concurrent
  /// relations wait instead of duplicating the one-per-epoch build.
  IndexPtr GetOrBuild(uint64_t key, const std::function<IndexPtr()>& build);

  uint64_t builds() const;
  uint64_t hits() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, IndexPtr> entries_;
  uint64_t builds_ = 0;
  uint64_t hits_ = 0;
};

/// Candidate discovery configuration (the finder's options struct; lives
/// here so the sources and the orchestrator share one definition).
struct CandidateFinderOptions {
  /// Reference facts to probe (after shuffling the scan window).
  size_t sample_facts = 30;
  /// Size of the scanned r-fact window.
  size_t scan_limit = 300;
  /// Keep at most this many candidates (by descending score/co-occurrence).
  size_t max_candidates = 8;
  /// Require at least this many co-occurring sample pairs (sameAs source).
  size_t min_cooccurrence = 1;
  /// Sampling seed. The default is a historical constant; run-level seeding
  /// derives it from one master seed (see ApplyRunSeed in
  /// align/relation_aligner.h) so discovery follows the run's seed.
  uint64_t seed = 23;
  size_t page_size = 250;
  LiteralMatcherOptions literal_options;

  /// Which source(s) FindCandidates orchestrates.
  CandidateSourceKind source = CandidateSourceKind::kSameAs;

  /// Lexical source: LSH shape + acceptance floor for bucket mates.
  MinHashLshOptions lsh;
  double min_lexical_score = 0.15;

  /// Distribution source: facts sampled per profile, inventory cap in
  /// standalone mode, and the acceptance floor.
  size_t distribution_window = 160;
  size_t distribution_pool_limit = 256;
  double min_distribution_score = 0.35;

  /// PARIS-style prior weights: prior = 1 - prod(1 - w_s * score_s).
  double sameas_weight = 0.9;
  double lexical_weight = 0.6;
  double distribution_weight = 0.35;

  /// Shared lexical-index memo. RelationAligner installs one per aligner
  /// when unset; a null cache makes each discovery rebuild the index
  /// (correct, just wasteful).
  std::shared_ptr<LexicalIndexCache> lexical_cache;
};

/// One scored candidate as produced by a source. Scores are in [0, 1] and
/// source-specific (co-occurrence fraction, label similarity, profile
/// similarity); the finder folds them into the PARIS-style prior.
struct ScoredCandidate {
  Term relation;             ///< r' in K'.
  double score = 0.0;
  size_t cooccurrences = 0;  ///< SameAs source only; 0 elsewhere.
};

/// One discovered candidate as handed to the aligner.
struct CandidateRelation {
  Term relation;             ///< r' in K'.
  size_t cooccurrences = 0;  ///< Sampled r pairs this relation connected.
  /// PARIS-style discovery prior in [0, 1]; recorded into the verdict and
  /// surfaced by the CLI. Purely diagnostic for the evidence loop — the
  /// sampling verdicts do not depend on it.
  double prior = 0.0;
};

/// A discovery strategy. Implementations are cheap to construct (they bind
/// borrowed endpoints + options), deterministic, and issue every KB access
/// through the Endpoint interface of the instance they were given — which
/// under AlignMany is the relation-private TrackingEndpoint, keeping
/// per-relation query accounting exact.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;
  virtual const char* name() const = 0;
  /// Scored candidates for reference relation `r`, sorted by descending
  /// score (ties: ascending IRI), truncated to options.max_candidates.
  virtual StatusOr<std::vector<ScoredCandidate>> Discover(const Term& r) = 0;
};

/// The paper's sampler behind the source interface. The probe pipeline is
/// the pre-refactor CandidateFinder body moved verbatim: same queries, same
/// order, same counts — regression-tested against a frozen copy.
class SameAsOverlapSource : public CandidateSource {
 public:
  SameAsOverlapSource(Endpoint* candidate_kb, Endpoint* reference_kb,
                      const CrossKbTranslator* to_candidate,
                      const CandidateFinderOptions& options);
  const char* name() const override { return "sameas"; }
  StatusOr<std::vector<ScoredCandidate>> Discover(const Term& r) override;

 private:
  Endpoint* candidate_kb_;   // K'. Not owned.
  Endpoint* reference_kb_;   // K.  Not owned.
  const CrossKbTranslator* to_candidate_;  // Not owned.
  CandidateFinderOptions options_;
  LiteralMatcher literal_matcher_;
};

/// MinHash/LSH label similarity over the candidate endpoint's predicate
/// inventory. Needs zero sameAs links. Per discovery: one paged inventory
/// query (cheap, dedup'd by any caching layer) + one O(bucket size) LSH
/// lookup; the index build is amortized through the shared cache.
class LexicalIndexSource : public CandidateSource {
 public:
  LexicalIndexSource(Endpoint* candidate_kb,
                     const CandidateFinderOptions& options);
  const char* name() const override { return "lexical"; }
  StatusOr<std::vector<ScoredCandidate>> Discover(const Term& r) override;

  /// Cost of the most recent Discover's LSH lookup (bench introspection).
  const MinHashLsh::LookupStats& last_lookup_stats() const {
    return last_lookup_stats_;
  }
  /// Inventory size behind the most recent Discover.
  size_t last_inventory_size() const { return last_inventory_size_; }

 private:
  /// Fetches + sorts the candidate endpoint's predicate IRIs and returns
  /// the (epoch, options, inventory)-keyed index, built on cache miss.
  StatusOr<LexicalIndexCache::IndexPtr> GetIndex();

  Endpoint* candidate_kb_;  // Not owned.
  CandidateFinderOptions options_;
  std::shared_ptr<LexicalIndexCache> cache_;  ///< May be private (null opt).
  MinHashLsh::LookupStats last_lookup_stats_;
  size_t last_inventory_size_ = 0;
};

/// Head/tail + functionality profile similarity, observed purely through
/// endpoint queries (works against remote SPARQL services; synth worlds
/// carry no rdf:type triples, so the observable "type distribution" is the
/// object-kind mix + repeat-rate shape of a sampled fact window).
class DistributionSource : public CandidateSource {
 public:
  /// A relation's sampled profile.
  struct Profile {
    bool valid = false;           ///< False when the relation has no facts.
    double functionality = 0.0;   ///< distinct subjects / facts.
    double inverse_functionality = 0.0;  ///< distinct objects / facts.
    double literal_fraction = 0.0;       ///< literal objects / facts.
    double top_subject_share = 0.0;      ///< max subject multiplicity share.
  };

  DistributionSource(Endpoint* candidate_kb, Endpoint* reference_kb,
                     const CandidateFinderOptions& options);
  const char* name() const override { return "distribution"; }

  /// Standalone mode: profiles a deterministic, size-capped slice of the
  /// candidate inventory and scores it against r's profile.
  StatusOr<std::vector<ScoredCandidate>> Discover(const Term& r) override;

  /// Composite mode: scores an externally proposed pool (one batched
  /// SelectMany) instead of walking the inventory. Returns scores aligned
  /// with `pool` by index.
  StatusOr<std::vector<double>> ScorePool(const Term& r,
                                          const std::vector<Term>& pool);

  /// Profile similarity in [0, 1] (product of per-feature agreements; an
  /// entity-range vs literal-range mismatch collapses it toward 0).
  static double Similarity(const Profile& a, const Profile& b);

 private:
  StatusOr<Profile> BuildProfile(Endpoint* endpoint, const Term& relation);
  StatusOr<std::vector<Profile>> BuildProfiles(Endpoint* endpoint,
                                               const std::vector<Term>& pool);

  Endpoint* candidate_kb_;  // Not owned.
  Endpoint* reference_kb_;  // Not owned.
  CandidateFinderOptions options_;
};

/// The kAuto combiner: runs sameAs + lexical discovery, unions the pools,
/// adds the distribution score for every pool member, and ranks by the
/// noisy-or prior. Relations only one source saw still surface (their
/// other scores are 0).
class CompositeCandidateSource : public CandidateSource {
 public:
  CompositeCandidateSource(Endpoint* candidate_kb, Endpoint* reference_kb,
                           const CrossKbTranslator* to_candidate,
                           const CandidateFinderOptions& options);
  const char* name() const override { return "auto"; }
  StatusOr<std::vector<ScoredCandidate>> Discover(const Term& r) override;

 private:
  Endpoint* candidate_kb_;
  Endpoint* reference_kb_;
  const CrossKbTranslator* to_candidate_;
  CandidateFinderOptions options_;
};

}  // namespace sofya

#endif  // SOFYA_ALIGN_CANDIDATE_SOURCE_H_
