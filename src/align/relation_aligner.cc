#include "align/relation_aligner.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "endpoint/tracking_endpoint.h"
#include "sampling/simple_sampler.h"
#include "sampling/unbiased_sampler.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sofya {

std::vector<Term> AlignmentResult::AcceptedSubsumptions() const {
  std::vector<Term> out;
  for (const auto& v : verdicts) {
    if (v.accepted) out.push_back(v.relation);
  }
  return out;
}

std::vector<Term> AlignmentResult::AcceptedEquivalences() const {
  std::vector<Term> out;
  for (const auto& v : verdicts) {
    if (v.equivalence) out.push_back(v.relation);
  }
  return out;
}

RelationAligner::RelationAligner(Endpoint* candidate_kb,
                                 Endpoint* reference_kb,
                                 const SameAsIndex* links,
                                 AlignerOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      links_(links),
      options_(options),
      to_reference_(links, reference_kb->base_iri()),
      to_candidate_(links, candidate_kb->base_iri()) {}

StatusOr<AlignmentResult> RelationAligner::Align(const Term& r) {
  AlignmentResult result;
  result.reference_relation = r;

  const EndpointStats cand_before = candidate_kb_->stats();
  const EndpointStats ref_before = reference_kb_->stats();

  // Phase 1: candidate discovery.
  CandidateFinder finder(candidate_kb_, reference_kb_, &to_candidate_,
                         options_.finder);
  SOFYA_ASSIGN_OR_RETURN(std::vector<CandidateRelation> candidates,
                         finder.FindCandidates(r));

  // Phase 2: simple-sample evidence + threshold.
  SimpleSampler sampler(candidate_kb_, reference_kb_, &to_reference_,
                        options_.sampler);
  for (const CandidateRelation& candidate : candidates) {
    CandidateVerdict verdict;
    verdict.relation = candidate.relation;
    verdict.cooccurrences = candidate.cooccurrences;
    verdict.rule.body = candidate.relation;
    verdict.rule.head = r;

    SOFYA_ASSIGN_OR_RETURN(EvidenceSet evidence,
                           sampler.CollectEvidence(candidate.relation, r));
    PopulateRuleStats(evidence, &verdict.rule);
    verdict.passed_threshold =
        evidence.total_pairs() >= options_.min_pairs &&
        evidence.support() >= options_.min_support &&
        Confidence(options_.measure, evidence) >= options_.threshold;
    result.verdicts.push_back(std::move(verdict));
  }

  // Phase 3: UBS counter-example pruning over the survivors.
  if (options_.use_ubs) {
    std::vector<Term> survivors;
    for (const auto& v : result.verdicts) {
      if (v.passed_threshold) survivors.push_back(v.relation);
    }
    if (!survivors.empty()) {
      UnbiasedSampler ubs(candidate_kb_, reference_kb_, &to_reference_,
                          &to_candidate_, options_.sampler, options_.ubs);
      // Candidate-side pair probes (the paper's explicit form) need at
      // least two candidates to contrast.
      UbsReport report;
      if (survivors.size() >= 2) {
        SOFYA_ASSIGN_OR_RETURN(report, ubs.Probe(r, survivors));
      }
      // Mirrored reference-side probes cover the remaining survivors
      // (e.g. a lone broad => narrow candidate): contrast the head with
      // the reference relations that co-occur with the candidate.
      if (options_.ubs.enable_reference_siblings) {
        CandidateFinderOptions sibling_options = options_.finder;
        sibling_options.max_candidates = options_.ubs.reference_sibling_limit;
        CandidateFinder sibling_finder(reference_kb_, candidate_kb_,
                                       &to_reference_, sibling_options);
        for (const Term& survivor : survivors) {
          if (report.SubsumptionHits(survivor) >=
                  options_.ubs.min_contradictions &&
              report.EquivalenceHits(survivor) >=
                  options_.ubs.min_contradictions) {
            continue;  // Already fully contradicted.
          }
          SOFYA_ASSIGN_OR_RETURN(
              std::vector<CandidateRelation> siblings,
              sibling_finder.FindCandidates(survivor));
          std::vector<Term> sibling_terms;
          for (const auto& s : siblings) sibling_terms.push_back(s.relation);
          SOFYA_RETURN_IF_ERROR(ubs.ProbeReferenceSiblings(
              r, survivor, sibling_terms, &report));
        }
      }
      for (auto& v : result.verdicts) {
        if (!v.passed_threshold) continue;
        const size_t needed = std::max<size_t>(
            options_.ubs.min_contradictions,
            static_cast<size_t>(
                std::ceil(options_.ubs.contradiction_support_ratio *
                          static_cast<double>(v.rule.support))));
        if (report.SubsumptionHits(v.relation) >= needed) {
          v.ubs_subsumption_pruned = true;
        }
        if (report.EquivalenceHits(v.relation) >= needed) {
          v.ubs_equivalence_pruned = true;
        }
      }
    }
  }

  for (auto& v : result.verdicts) {
    v.accepted = v.passed_threshold && !v.ubs_subsumption_pruned;
  }

  // Phase 4: equivalence via double subsumption (reverse direction with the
  // KB roles swapped: r plays the candidate body in K, r' the reference
  // head in K').
  if (options_.check_equivalence) {
    SimpleSampler reverse_sampler(reference_kb_, candidate_kb_,
                                  &to_candidate_, options_.sampler);
    for (auto& v : result.verdicts) {
      if (!v.accepted) continue;
      v.reverse_rule.body = r;
      v.reverse_rule.head = v.relation;
      SOFYA_ASSIGN_OR_RETURN(EvidenceSet reverse_evidence,
                             reverse_sampler.CollectEvidence(r, v.relation));
      PopulateRuleStats(reverse_evidence, &v.reverse_rule);
      v.reverse_checked = true;
      v.reverse_passed_threshold =
          reverse_evidence.total_pairs() >= options_.min_pairs &&
          reverse_evidence.support() >= options_.min_support &&
          Confidence(options_.measure, reverse_evidence) >=
              options_.threshold;
      v.equivalence =
          v.reverse_passed_threshold && !v.ubs_equivalence_pruned;
    }
  }

  // Cost accounting.
  const EndpointStats cand_after = candidate_kb_->stats();
  const EndpointStats ref_after = reference_kb_->stats();
  result.candidate_queries = cand_after.queries - cand_before.queries;
  result.reference_queries = ref_after.queries - ref_before.queries;
  result.rows_shipped = (cand_after.rows_returned - cand_before.rows_returned) +
                        (ref_after.rows_returned - ref_before.rows_returned);
  result.cache_hits = (cand_after.cache_hits - cand_before.cache_hits) +
                      (ref_after.cache_hits - ref_before.cache_hits);
  result.cache_misses = (cand_after.cache_misses - cand_before.cache_misses) +
                        (ref_after.cache_misses - ref_before.cache_misses);
  result.simulated_latency_ms =
      (cand_after.simulated_latency_ms - cand_before.simulated_latency_ms) +
      (ref_after.simulated_latency_ms - ref_before.simulated_latency_ms);
  return result;
}

StatusOr<AlignManyResult> RelationAligner::AlignMany(
    std::span<const Term> relations, size_t num_threads) {
  AlignManyResult fleet;
  if (relations.empty()) return fleet;
  num_threads = std::clamp<size_t>(num_threads, 1, relations.size());
  fleet.threads_used = num_threads;

  // Fleet-level accounting: one snapshot pair around the whole fan-out. No
  // tasks are in flight at either snapshot, so the deltas are exact.
  const EndpointStats cand_before = candidate_kb_->stats();
  const EndpointStats ref_before = reference_kb_->stats();
  WallTimer timer;

  // One task per relation. Each task builds a private tracking view over
  // the shared endpoints plus its own (cheap) aligner, so Align's internal
  // delta accounting reads this task's counters instead of racing on the
  // shared stack's. Even num_threads == 1 goes through this path: the
  // attribution regime must not depend on the thread count.
  auto align_one = [this](const Term& r) -> StatusOr<AlignmentResult> {
    TrackingEndpoint candidate_view(candidate_kb_);
    TrackingEndpoint reference_view(reference_kb_);
    RelationAligner task_aligner(&candidate_view, &reference_view, links_,
                                 options_);
    return task_aligner.Align(r);
  };

  std::vector<StatusOr<AlignmentResult>> slots;
  slots.reserve(relations.size());
  {
    ThreadPool pool(num_threads);
    std::vector<std::future<StatusOr<AlignmentResult>>> futures;
    futures.reserve(relations.size());
    for (const Term& r : relations) {
      futures.push_back(pool.Submit([&align_one, &r] { return align_one(r); }));
    }
    for (auto& future : futures) slots.push_back(future.get());
  }

  fleet.wall_ms = timer.ElapsedMillis();
  const EndpointStats cand_after = candidate_kb_->stats();
  const EndpointStats ref_after = reference_kb_->stats();

  // Report the first failure by input order (deterministic regardless of
  // which task lost the wall-clock race).
  for (const auto& slot : slots) {
    if (!slot.ok()) return slot.status();
  }
  fleet.results.reserve(slots.size());
  for (auto& slot : slots) fleet.results.push_back(std::move(slot).value());

  auto delta = [](const EndpointStats& after, const EndpointStats& before) {
    EndpointStats d;
    d.queries = after.queries - before.queries;
    d.rows_returned = after.rows_returned - before.rows_returned;
    d.bytes_estimated = after.bytes_estimated - before.bytes_estimated;
    d.index_probes = after.index_probes - before.index_probes;
    d.triples_scanned = after.triples_scanned - before.triples_scanned;
    d.cache_hits = after.cache_hits - before.cache_hits;
    d.cache_misses = after.cache_misses - before.cache_misses;
    d.failures_injected = after.failures_injected - before.failures_injected;
    d.simulated_latency_ms =
        after.simulated_latency_ms - before.simulated_latency_ms;
    return d;
  };
  fleet.candidate_stats = delta(cand_after, cand_before);
  fleet.reference_stats = delta(ref_after, ref_before);
  return fleet;
}

}  // namespace sofya
