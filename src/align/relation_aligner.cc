#include "align/relation_aligner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <utility>

#include "endpoint/tracking_endpoint.h"
#include "sampling/simple_sampler.h"
#include "util/random.h"
#include "sampling/unbiased_sampler.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sofya {

std::vector<Term> AlignmentResult::AcceptedSubsumptions() const {
  std::vector<Term> out;
  for (const auto& v : verdicts) {
    if (v.accepted) out.push_back(v.relation);
  }
  return out;
}

std::vector<Term> AlignmentResult::AcceptedEquivalences() const {
  std::vector<Term> out;
  for (const auto& v : verdicts) {
    if (v.equivalence) out.push_back(v.relation);
  }
  return out;
}

RelationAligner::RelationAligner(Endpoint* candidate_kb,
                                 Endpoint* reference_kb,
                                 const SameAsIndex* links,
                                 AlignerOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      links_(links),
      options_(options),
      to_reference_(links, reference_kb->base_iri()),
      to_candidate_(links, candidate_kb->base_iri()) {
  // One lexical-index cache per aligner tree: RelationRun children copy
  // options_ (shared_ptr and all), so every per-relation view shares the
  // expensive MinHash index instead of rebuilding it per relation.
  if (options_.finder.lexical_cache == nullptr) {
    options_.finder.lexical_cache = std::make_shared<LexicalIndexCache>();
  }
}

void ApplyRunSeed(AlignerOptions* options, uint64_t seed) {
  if (seed == 0) return;
  SplitMix64 sm(seed);
  options->finder.seed = sm.Next();
  options->sampler.seed = sm.Next();
}

StatusOr<std::vector<CandidateRelation>> RelationAligner::DiscoverPhase(
    const Term& r) {
  CandidateFinder finder(candidate_kb_, reference_kb_, &to_candidate_,
                         options_.finder);
  return finder.FindCandidates(r);
}

StatusOr<CandidateVerdict> RelationAligner::ScorePhase(
    const Term& r, const CandidateRelation& candidate) {
  CandidateVerdict verdict;
  verdict.relation = candidate.relation;
  verdict.cooccurrences = candidate.cooccurrences;
  verdict.prior = candidate.prior;
  verdict.rule.body = candidate.relation;
  verdict.rule.head = r;

  // The sampler is stateless across calls and seeds its shuffle from the
  // candidate relation, so scoring is a pure function of (r, candidate) —
  // the subtask can run on any worker in any order.
  SimpleSampler sampler(candidate_kb_, reference_kb_, &to_reference_,
                        options_.sampler);
  SOFYA_ASSIGN_OR_RETURN(EvidenceSet evidence,
                         sampler.CollectEvidence(candidate.relation, r));
  PopulateRuleStats(evidence, &verdict.rule);
  verdict.passed_threshold =
      evidence.total_pairs() >= options_.min_pairs &&
      evidence.support() >= options_.min_support &&
      Confidence(options_.measure, evidence) >= options_.threshold;
  return verdict;
}

Status RelationAligner::UbsPhase(const Term& r,
                                 std::vector<CandidateVerdict>* verdicts) {
  if (options_.use_ubs) {
    std::vector<Term> survivors;
    for (const auto& v : *verdicts) {
      if (v.passed_threshold) survivors.push_back(v.relation);
    }
    if (!survivors.empty()) {
      UnbiasedSampler ubs(candidate_kb_, reference_kb_, &to_reference_,
                          &to_candidate_, options_.sampler, options_.ubs);
      // Candidate-side pair probes (the paper's explicit form) need at
      // least two candidates to contrast.
      UbsReport report;
      if (survivors.size() >= 2) {
        SOFYA_ASSIGN_OR_RETURN(report, ubs.Probe(r, survivors));
      }
      // Mirrored reference-side probes cover the remaining survivors
      // (e.g. a lone broad => narrow candidate): contrast the head with
      // the reference relations that co-occur with the candidate. The
      // survivor loop is order-dependent by design (each probe's settle
      // check reads the tallies of the previous ones), which is why UBS is
      // one sequential wave per relation rather than per-survivor subtasks.
      if (options_.ubs.enable_reference_siblings) {
        CandidateFinderOptions sibling_options = options_.finder;
        sibling_options.max_candidates = options_.ubs.reference_sibling_limit;
        CandidateFinder sibling_finder(reference_kb_, candidate_kb_,
                                       &to_reference_, sibling_options);
        for (const Term& survivor : survivors) {
          if (report.SubsumptionHits(survivor) >=
                  options_.ubs.min_contradictions &&
              report.EquivalenceHits(survivor) >=
                  options_.ubs.min_contradictions) {
            continue;  // Already fully contradicted.
          }
          SOFYA_ASSIGN_OR_RETURN(
              std::vector<CandidateRelation> siblings,
              sibling_finder.FindCandidates(survivor));
          std::vector<Term> sibling_terms;
          for (const auto& s : siblings) sibling_terms.push_back(s.relation);
          SOFYA_RETURN_IF_ERROR(ubs.ProbeReferenceSiblings(
              r, survivor, sibling_terms, &report));
        }
      }
      for (auto& v : *verdicts) {
        if (!v.passed_threshold) continue;
        const size_t needed = std::max<size_t>(
            options_.ubs.min_contradictions,
            static_cast<size_t>(
                std::ceil(options_.ubs.contradiction_support_ratio *
                          static_cast<double>(v.rule.support))));
        if (report.SubsumptionHits(v.relation) >= needed) {
          v.ubs_subsumption_pruned = true;
        }
        if (report.EquivalenceHits(v.relation) >= needed) {
          v.ubs_equivalence_pruned = true;
        }
      }
    }
  }

  for (auto& v : *verdicts) {
    v.accepted = v.passed_threshold && !v.ubs_subsumption_pruned;
  }
  return Status::OK();
}

Status RelationAligner::ReversePhase(const Term& r, CandidateVerdict* v) {
  // Equivalence via double subsumption: the reverse direction with the KB
  // roles swapped (r plays the candidate body in K, r' the reference head
  // in K'). Like ScorePhase, a pure function of (r, verdict->relation).
  SimpleSampler reverse_sampler(reference_kb_, candidate_kb_, &to_candidate_,
                                options_.sampler);
  v->reverse_rule.body = r;
  v->reverse_rule.head = v->relation;
  SOFYA_ASSIGN_OR_RETURN(EvidenceSet reverse_evidence,
                         reverse_sampler.CollectEvidence(r, v->relation));
  PopulateRuleStats(reverse_evidence, &v->reverse_rule);
  v->reverse_checked = true;
  v->reverse_passed_threshold =
      reverse_evidence.total_pairs() >= options_.min_pairs &&
      reverse_evidence.support() >= options_.min_support &&
      Confidence(options_.measure, reverse_evidence) >= options_.threshold;
  v->equivalence = v->reverse_passed_threshold && !v->ubs_equivalence_pruned;
  return Status::OK();
}

StatusOr<AlignmentResult> RelationAligner::Align(const Term& r) {
  AlignmentResult result;
  result.reference_relation = r;

  const EndpointStats cand_before = candidate_kb_->stats();
  const EndpointStats ref_before = reference_kb_->stats();

  // The sequential composition of the four phases — the reference the
  // scheduled decomposition must be bit-identical to.
  SOFYA_ASSIGN_OR_RETURN(std::vector<CandidateRelation> candidates,
                         DiscoverPhase(r));
  for (const CandidateRelation& candidate : candidates) {
    SOFYA_ASSIGN_OR_RETURN(CandidateVerdict verdict,
                           ScorePhase(r, candidate));
    result.verdicts.push_back(std::move(verdict));
  }
  SOFYA_RETURN_IF_ERROR(UbsPhase(r, &result.verdicts));
  if (options_.check_equivalence) {
    for (auto& v : result.verdicts) {
      if (!v.accepted) continue;
      SOFYA_RETURN_IF_ERROR(ReversePhase(r, &v));
    }
  }

  // Cost accounting.
  const EndpointStats cand_after = candidate_kb_->stats();
  const EndpointStats ref_after = reference_kb_->stats();
  result.candidate_queries = cand_after.queries - cand_before.queries;
  result.reference_queries = ref_after.queries - ref_before.queries;
  result.rows_shipped = (cand_after.rows_returned - cand_before.rows_returned) +
                        (ref_after.rows_returned - ref_before.rows_returned);
  result.cache_hits = (cand_after.cache_hits - cand_before.cache_hits) +
                      (ref_after.cache_hits - ref_before.cache_hits);
  result.cache_misses = (cand_after.cache_misses - cand_before.cache_misses) +
                        (ref_after.cache_misses - ref_before.cache_misses);
  result.simulated_latency_ms =
      (cand_after.simulated_latency_ms - cand_before.simulated_latency_ms) +
      (ref_after.simulated_latency_ms - ref_before.simulated_latency_ms);
  return result;
}

namespace {

/// Runs one phase body, converting any escaping exception into a Status.
/// Phase subtasks run via ThreadPool::Post (fire-and-forget continuations,
/// no future to carry an exception), so an uncaught throw — say bad_alloc
/// inside sampling — would terminate the process; the monolith scheduler
/// and sequential Align surface it as an error instead, and the two
/// schedules must fail the same way.
template <typename Fn>
Status RunPhaseBody(Fn&& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("phase subtask threw: ") + e.what());
  } catch (...) {
    return Status::Internal("phase subtask threw a non-exception");
  }
}

/// Computes a fleet-level stats delta.
EndpointStats StatsDelta(const EndpointStats& after,
                         const EndpointStats& before) {
  EndpointStats d;
  d.queries = after.queries - before.queries;
  d.rows_returned = after.rows_returned - before.rows_returned;
  d.bytes_estimated = after.bytes_estimated - before.bytes_estimated;
  d.index_probes = after.index_probes - before.index_probes;
  d.triples_scanned = after.triples_scanned - before.triples_scanned;
  d.cache_hits = after.cache_hits - before.cache_hits;
  d.cache_misses = after.cache_misses - before.cache_misses;
  d.failures_injected = after.failures_injected - before.failures_injected;
  d.simulated_latency_ms =
      after.simulated_latency_ms - before.simulated_latency_ms;
  return d;
}

}  // namespace

/// Per-relation state of the phase scheduler. Each relation owns private
/// tracking views over the shared endpoint stack (thread-safe: the
/// relation's subtasks run on different workers) and a task aligner bound
/// to those views, so per-relation attribution is exact regardless of what
/// the rest of the fleet is doing.
struct RelationRun {
  RelationRun(const Term& relation, RelationAligner* parent)
      : r(relation),
        cand_view(parent->candidate_kb_),
        ref_view(parent->reference_kb_),
        aligner(&cand_view, &ref_view, parent->links_, parent->options_) {}

  Term r;
  TrackingEndpoint cand_view;
  TrackingEndpoint ref_view;
  RelationAligner aligner;

  AlignmentResult result;
  std::vector<CandidateRelation> candidates;
  /// Per-candidate ScorePhase statuses (slot-addressed, no lock needed:
  /// each subtask writes only its own slot, and the phase barrier's
  /// acquire-decrement publishes the writes to whoever runs the next
  /// phase).
  std::vector<Status> score_statuses;
  /// Verdict indices that need a ReversePhase, and their statuses.
  std::vector<size_t> reverse_targets;
  std::vector<Status> reverse_statuses;

  Status status;  ///< The relation's final status (first error, in order).
  std::atomic<size_t> pending{0};  ///< Subtasks outstanding in this phase.
};

StatusOr<AlignManyResult> RelationAligner::AlignManyPhased(
    std::span<const Term> relations, size_t num_threads) {
  AlignManyResult fleet;
  if (relations.empty()) return fleet;
  num_threads = std::max<size_t>(1, num_threads);
  fleet.threads_used = num_threads;

  // Fleet-level accounting: one snapshot pair around the whole fan-out. No
  // tasks are in flight at either snapshot, so the deltas are exact.
  const EndpointStats cand_before = candidate_kb_->stats();
  const EndpointStats ref_before = reference_kb_->stats();
  WallTimer timer;

  std::vector<std::unique_ptr<RelationRun>> runs;
  runs.reserve(relations.size());
  for (const Term& r : relations) {
    runs.push_back(std::make_unique<RelationRun>(r, this));
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = runs.size();       // Guarded by done_mu.
  std::atomic<size_t> subtasks{0};

  {
    ThreadPool pool(num_threads);

    auto finish_relation = [&](RelationRun* run) {
      // Counters from the relation's private views: per-call charges whose
      // sums are scheduling-independent — the bit-identical guarantee.
      const EndpointStats cand = run->cand_view.stats();
      const EndpointStats ref = run->ref_view.stats();
      run->result.reference_relation = run->r;
      run->result.candidate_queries = cand.queries;
      run->result.reference_queries = ref.queries;
      run->result.rows_shipped = cand.rows_returned + ref.rows_returned;
      run->result.cache_hits = cand.cache_hits + ref.cache_hits;
      run->result.cache_misses = cand.cache_misses + ref.cache_misses;
      run->result.simulated_latency_ms =
          cand.simulated_latency_ms + ref.simulated_latency_ms;
      {
        std::lock_guard<std::mutex> lock(done_mu);
        --remaining;
      }
      done_cv.notify_one();
    };

    // Phase chain, continuation-passing: the worker that completes a
    // phase's last subtask posts the next phase. No subtask ever blocks on
    // another, so a fixed pool cannot deadlock on its own dependencies.
    std::function<void(RelationRun*)> post_finalize_or_reverse =
        [&](RelationRun* run) {
          // First error by phase-then-candidate order, deterministically.
          for (const Status& status : run->score_statuses) {
            if (!status.ok() && run->status.ok()) run->status = status;
          }
          for (const Status& status : run->reverse_statuses) {
            if (!status.ok() && run->status.ok()) run->status = status;
          }
          finish_relation(run);
        };

    auto post_reverse_phase = [&](RelationRun* run) {
      if (!run->status.ok() || !options_.check_equivalence) {
        post_finalize_or_reverse(run);
        return;
      }
      for (size_t i = 0; i < run->result.verdicts.size(); ++i) {
        if (run->result.verdicts[i].accepted) run->reverse_targets.push_back(i);
      }
      if (run->reverse_targets.empty()) {
        post_finalize_or_reverse(run);
        return;
      }
      run->reverse_statuses.resize(run->reverse_targets.size());
      run->pending.store(run->reverse_targets.size(),
                         std::memory_order_relaxed);
      for (size_t j = 0; j < run->reverse_targets.size(); ++j) {
        subtasks.fetch_add(1, std::memory_order_relaxed);
        pool.Post([&, run, j] {
          run->reverse_statuses[j] = RunPhaseBody([&] {
            return run->aligner.ReversePhase(
                run->r, &run->result.verdicts[run->reverse_targets[j]]);
          });
          if (run->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            post_finalize_or_reverse(run);
          }
        });
      }
    };

    auto post_ubs_phase = [&](RelationRun* run) {
      subtasks.fetch_add(1, std::memory_order_relaxed);
      pool.Post([&, run] {
        // A failed sampling subtask settles the relation's status before
        // UBS spends any more of the query budget on it.
        for (const Status& status : run->score_statuses) {
          if (!status.ok()) {
            run->status = status;
            break;
          }
        }
        if (run->status.ok()) {
          run->status = RunPhaseBody([&] {
            return run->aligner.UbsPhase(run->r, &run->result.verdicts);
          });
        }
        post_reverse_phase(run);
      });
    };

    auto post_score_phase = [&](RelationRun* run) {
      if (run->candidates.empty()) {
        post_ubs_phase(run);
        return;
      }
      run->result.verdicts.resize(run->candidates.size());
      run->score_statuses.resize(run->candidates.size());
      run->pending.store(run->candidates.size(), std::memory_order_relaxed);
      for (size_t i = 0; i < run->candidates.size(); ++i) {
        subtasks.fetch_add(1, std::memory_order_relaxed);
        pool.Post([&, run, i] {
          run->score_statuses[i] = RunPhaseBody([&]() -> Status {
            auto verdict = run->aligner.ScorePhase(run->r, run->candidates[i]);
            if (!verdict.ok()) return verdict.status();
            run->result.verdicts[i] = std::move(*verdict);
            return Status::OK();
          });
          if (run->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            post_ubs_phase(run);
          }
        });
      }
    };

    for (const auto& run_ptr : runs) {
      RelationRun* run = run_ptr.get();
      subtasks.fetch_add(1, std::memory_order_relaxed);
      pool.Post([&, run] {
        run->status = RunPhaseBody([&]() -> Status {
          auto candidates = run->aligner.DiscoverPhase(run->r);
          if (!candidates.ok()) return candidates.status();
          run->candidates = std::move(*candidates);
          return Status::OK();
        });
        if (!run->status.ok()) {
          finish_relation(run);
          return;
        }
        post_score_phase(run);
      });
    }

    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
    // Pool destructor: all queues are drained (every chain finished), so
    // this only joins the workers.
  }

  fleet.wall_ms = timer.ElapsedMillis();
  fleet.subtasks_scheduled = subtasks.load(std::memory_order_relaxed);
  const EndpointStats cand_after = candidate_kb_->stats();
  const EndpointStats ref_after = reference_kb_->stats();

  // Report the first failure by input order (deterministic regardless of
  // which chain lost the wall-clock race).
  for (const auto& run : runs) {
    if (!run->status.ok()) return run->status;
  }
  fleet.results.reserve(runs.size());
  for (auto& run : runs) fleet.results.push_back(std::move(run->result));

  fleet.candidate_stats = StatsDelta(cand_after, cand_before);
  fleet.reference_stats = StatsDelta(ref_after, ref_before);
  return fleet;
}

StatusOr<AlignManyResult> RelationAligner::AlignManyMonolith(
    std::span<const Term> relations, size_t num_threads) {
  AlignManyResult fleet;
  if (relations.empty()) return fleet;
  num_threads = std::clamp<size_t>(num_threads, 1, relations.size());
  fleet.threads_used = num_threads;
  fleet.subtasks_scheduled = relations.size();

  const EndpointStats cand_before = candidate_kb_->stats();
  const EndpointStats ref_before = reference_kb_->stats();
  WallTimer timer;

  // One task per relation. Each task builds a private tracking view over
  // the shared endpoints plus its own (cheap) aligner, so Align's internal
  // delta accounting reads this task's counters instead of racing on the
  // shared stack's. Even num_threads == 1 goes through this path: the
  // attribution regime must not depend on the thread count.
  auto align_one = [this](const Term& r) -> StatusOr<AlignmentResult> {
    TrackingEndpoint candidate_view(candidate_kb_);
    TrackingEndpoint reference_view(reference_kb_);
    RelationAligner task_aligner(&candidate_view, &reference_view, links_,
                                 options_);
    return task_aligner.Align(r);
  };

  std::vector<StatusOr<AlignmentResult>> slots;
  slots.reserve(relations.size());
  {
    ThreadPool pool(num_threads);
    std::vector<std::future<StatusOr<AlignmentResult>>> futures;
    futures.reserve(relations.size());
    for (const Term& r : relations) {
      futures.push_back(pool.Submit([&align_one, &r] { return align_one(r); }));
    }
    for (auto& future : futures) slots.push_back(future.get());
  }

  fleet.wall_ms = timer.ElapsedMillis();
  const EndpointStats cand_after = candidate_kb_->stats();
  const EndpointStats ref_after = reference_kb_->stats();

  // Report the first failure by input order (deterministic regardless of
  // which task lost the wall-clock race).
  for (const auto& slot : slots) {
    if (!slot.ok()) return slot.status();
  }
  fleet.results.reserve(slots.size());
  for (auto& slot : slots) fleet.results.push_back(std::move(slot).value());

  fleet.candidate_stats = StatsDelta(cand_after, cand_before);
  fleet.reference_stats = StatsDelta(ref_after, ref_before);
  return fleet;
}

StatusOr<AlignManyResult> RelationAligner::AlignMany(
    std::span<const Term> relations, const AlignManyOptions& options) {
  switch (options.schedule) {
    case AlignSchedule::kPhase:
      return AlignManyPhased(relations, options.num_threads);
    case AlignSchedule::kRelation:
      return AlignManyMonolith(relations, options.num_threads);
  }
  return Status::Internal("unknown align schedule");
}

}  // namespace sofya
