// SimpleSampler — "Simple Sample Extraction" (paper Section 2.2).
//
// For a candidate rule r_sub(x,y) => r(x,y), with r_sub in the candidate KB
// K' and r in the reference KB K:
//
//   1. Scan a window of r_sub facts in K', shuffle it (pseudo-random
//      selection), and pick up to `sample_size` subjects x1 that have a
//      sameAs link into K and at least one linkable object (S^r_sub).
//   2. Fetch each sampled subject's r_sub facts (K'^S); facts whose object
//      lacks a link are ignored — "we do not want to punish the score ...
//      because of incomplete information".
//   3. Translate the pairs through sameAs into K (P^S).
//   4. For each translated subject x2, fetch its r-objects from K once;
//      mark each pair confirmed iff r(x2,y2) ∈ K, and record whether x2 has
//      any r-fact at all (the PCA denominator; when a subject matches, ALL
//      of its r facts are on hand, as the paper requires).
//
// Entity-literal relations (detected from the sampled objects) skip object
// translation and match literals with the configured LiteralMatcher.

#ifndef SOFYA_SAMPLING_SIMPLE_SAMPLER_H_
#define SOFYA_SAMPLING_SIMPLE_SAMPLER_H_

#include <string>
#include <vector>

#include "endpoint/endpoint.h"
#include "mining/evidence.h"
#include "sameas/translator.h"
#include "sampling/sampler_options.h"
#include "util/status.h"

namespace sofya {

/// Kind of a relation as probed from data.
enum class RelationKind {
  kEntityEntity,
  kEntityLiteral,
  kEmpty,  ///< No facts observed.
};

/// A sampled r_sub fact group for one subject, in both term spaces.
struct SampledSubject {
  Term subject_candidate;  ///< x1 in K'.
  Term subject_reference;  ///< x2 in K.
  /// (y1 in K', y2 in K) object pairs; for literal relations y2 == y1.
  std::vector<std::pair<Term, Term>> objects;
};

/// The sample S plus its translation — returned for inspection/tests.
struct SimpleSample {
  RelationKind kind = RelationKind::kEmpty;
  std::vector<SampledSubject> subjects;
  size_t facts_scanned = 0;   ///< Window size actually retrieved.
  size_t subjects_skipped = 0;  ///< Subjects dropped for missing links.
};

/// Simple Sample Extraction over two endpoints.
class SimpleSampler {
 public:
  /// Neither endpoint nor translator is owned; both must outlive the
  /// sampler. `to_reference` must translate K' terms into K's namespace.
  SimpleSampler(Endpoint* candidate_kb, Endpoint* reference_kb,
                const CrossKbTranslator* to_reference,
                SamplerOptions options = {});

  /// Steps 1–3: draw the sample for r_sub (no reference-KB queries yet).
  StatusOr<SimpleSample> DrawSample(const Term& r_sub);

  /// Step 4: score a drawn sample against reference relation r.
  StatusOr<EvidenceSet> ScoreAgainst(const SimpleSample& sample,
                                     const Term& r);

  /// Convenience: DrawSample + ScoreAgainst.
  StatusOr<EvidenceSet> CollectEvidence(const Term& r_sub, const Term& r);

  /// Probes the relation kind of `relation` in the candidate KB from up to
  /// `probe_facts` facts.
  StatusOr<RelationKind> ProbeKind(const Term& relation,
                                   size_t probe_facts = 20);

 private:
  Endpoint* candidate_kb_;   // K'. Not owned.
  Endpoint* reference_kb_;   // K.  Not owned.
  const CrossKbTranslator* to_reference_;  // Not owned.
  SamplerOptions options_;
  LiteralMatcher literal_matcher_;
};

}  // namespace sofya

#endif  // SOFYA_SAMPLING_SIMPLE_SAMPLER_H_
