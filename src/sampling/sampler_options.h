// Shared sampler configuration.

#ifndef SOFYA_SAMPLING_SAMPLER_OPTIONS_H_
#define SOFYA_SAMPLING_SAMPLER_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "similarity/literal_matcher.h"

namespace sofya {

/// Options shared by SimpleSampler and UnbiasedSampler.
struct SamplerOptions {
  /// Number of sampled subject entities per candidate relation (the paper
  /// evaluates with 10).
  size_t sample_size = 10;

  /// How many candidate-relation facts to scan (one paged query) when
  /// searching for subjects with usable sameAs links. Scanned facts are
  /// shuffled with `seed` to make the selection pseudo-random, then
  /// subjects are taken until `sample_size` qualify.
  size_t scan_limit = 500;

  /// Safety cap on facts fetched per sampled subject.
  size_t facts_per_subject_cap = 64;

  /// Page size for paged endpoint scans.
  size_t page_size = 250;

  /// Shuffle seed (combined with the relation IRI so distinct relations
  /// draw distinct pseudo-random subject sets).
  uint64_t seed = 17;

  /// Matching policy for entity-literal relations.
  LiteralMatcherOptions literal_options;
};

/// Options specific to the unbiased (UBS) pass.
struct UbsOptions {
  /// How many disagreeing-object rows to request per candidate pair.
  size_t probe_limit = 28;

  /// Contradictions needed to prune a wrong subsumption. The paper says
  /// "to eliminate a wrong relation we need only one case" (Section 3);
  /// with inter-KB fact noise a single contradiction over-prunes, so the
  /// default demands corroboration. Set to 1 (and ratio to 0) for the
  /// paper's literal rule (ablated in bench E5).
  size_t min_contradictions = 2;

  /// Support-relative corroboration: pruning additionally requires
  /// contradictions >= ratio * rule support. A rule confirmed by 25 pairs
  /// is not killed by 2 noisy disagreements; a rule with support 5 is.
  double contradiction_support_ratio = 0.3;

  /// Strategy toggles (for the ablation experiment E5).
  bool enable_equivalence_filter = true;  ///< Strategy A (case 1).
  bool enable_subsumption_filter = true;  ///< Strategy B (case 2).

  /// Mirrored probe: when a head has fewer than two surviving candidates,
  /// contrast sibling relations on the *reference* side instead (same
  /// disagreement logic with the KB roles swapped). This covers the
  /// broad=>narrow traps the candidate-side pair probe cannot see.
  bool enable_reference_siblings = true;
  /// Reference-sibling discovery budget (reverse candidate discovery).
  size_t reference_sibling_limit = 4;
};

}  // namespace sofya

#endif  // SOFYA_SAMPLING_SAMPLER_OPTIONS_H_
