#include "sampling/simple_sampler.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sofya {

namespace {

/// Seed derivation: distinct relations shuffle differently under one base
/// seed, deterministically.
uint64_t SeedFor(uint64_t base_seed, const Term& relation) {
  const std::string& key = relation.lexical();
  return base_seed ^ Fnv1a(key.data(), key.size());
}

}  // namespace

SimpleSampler::SimpleSampler(Endpoint* candidate_kb, Endpoint* reference_kb,
                             const CrossKbTranslator* to_reference,
                             SamplerOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_reference_(to_reference),
      options_(options),
      literal_matcher_(options.literal_options) {}

StatusOr<RelationKind> SimpleSampler::ProbeKind(const Term& relation,
                                                size_t probe_facts) {
  const TermId rel_id = candidate_kb_->LookupTerm(relation);
  if (rel_id == kNullTermId) return RelationKind::kEmpty;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet rows,
      candidate_kb_->Select(queries::FactsOfPredicate(rel_id, probe_facts)));
  if (rows.rows.empty()) return RelationKind::kEmpty;
  size_t literals = 0;
  for (const auto& row : rows.rows) {
    SOFYA_ASSIGN_OR_RETURN(Term object, candidate_kb_->DecodeTerm(row[1]));
    if (object.is_literal()) ++literals;
  }
  // Majority vote: mixed-object relations (rare, dirty data) take the
  // dominant kind.
  return literals * 2 >= rows.rows.size() ? RelationKind::kEntityLiteral
                                          : RelationKind::kEntityEntity;
}

StatusOr<SimpleSample> SimpleSampler::DrawSample(const Term& r_sub) {
  SimpleSample sample;
  const TermId rel_id = candidate_kb_->LookupTerm(r_sub);
  if (rel_id == kNullTermId) return sample;  // Unknown relation: empty.

  SOFYA_ASSIGN_OR_RETURN(RelationKind kind, ProbeKind(r_sub));
  sample.kind = kind;
  if (kind == RelationKind::kEmpty) return sample;
  const bool literal_relation = kind == RelationKind::kEntityLiteral;

  // Step 1: scan window of r_sub facts.
  PagedSelectOptions page_options;
  page_options.page_size = options_.page_size;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet window,
      PagedSelect(candidate_kb_,
                  queries::FactsOfPredicate(rel_id, options_.scan_limit),
                  page_options));
  sample.facts_scanned = window.rows.size();

  // Distinct subjects in first-seen order, then shuffled (pseudo-random).
  std::vector<TermId> subject_ids;
  std::unordered_set<TermId> seen_subjects;
  for (const auto& row : window.rows) {
    if (seen_subjects.insert(row[0]).second) subject_ids.push_back(row[0]);
  }
  Rng rng(SeedFor(options_.seed, r_sub));
  Shuffle(rng, subject_ids);

  // Steps 2-3: qualify subjects and translate their facts.
  for (TermId subject_id : subject_ids) {
    if (sample.subjects.size() >= options_.sample_size) break;

    SOFYA_ASSIGN_OR_RETURN(Term x1, candidate_kb_->DecodeTerm(subject_id));
    auto x2 = to_reference_->Translate(x1);
    if (!x2.ok()) {
      ++sample.subjects_skipped;  // Subject itself has no link.
      continue;
    }

    // Fetch all r_sub facts of this subject (bounded).
    SelectQuery q = queries::ObjectsOf(subject_id, rel_id);
    q.Limit(options_.facts_per_subject_cap);
    SOFYA_ASSIGN_OR_RETURN(ResultSet facts, candidate_kb_->Select(q));

    SampledSubject entry;
    entry.subject_candidate = x1;
    entry.subject_reference = std::move(x2).value();
    for (const auto& row : facts.rows) {
      SOFYA_ASSIGN_OR_RETURN(Term y1, candidate_kb_->DecodeTerm(row[0]));
      if (literal_relation) {
        if (!y1.is_literal()) continue;  // Skip minority-kind objects.
        entry.objects.emplace_back(y1, y1);
        continue;
      }
      auto y2 = to_reference_->Translate(y1);
      if (!y2.ok()) continue;  // Unlinked object: ignored, not penalized.
      entry.objects.emplace_back(std::move(y1), std::move(y2).value());
    }

    if (entry.objects.empty()) {
      ++sample.subjects_skipped;  // No linkable fact for this subject.
      continue;
    }
    sample.subjects.push_back(std::move(entry));
  }
  return sample;
}

StatusOr<EvidenceSet> SimpleSampler::ScoreAgainst(const SimpleSample& sample,
                                                  const Term& r) {
  EvidenceSet evidence;
  if (sample.kind == RelationKind::kEmpty) return evidence;
  const bool literal_relation = sample.kind == RelationKind::kEntityLiteral;

  const TermId r_id = reference_kb_->LookupTerm(r);

  for (const SampledSubject& subject : sample.subjects) {
    // One reference query per subject: all r-objects of x2. This is both
    // the confirmation probe and the PCA-denominator probe, and it honors
    // the paper's note that once a subject matches, all of its r facts are
    // needed.
    std::vector<Term> r_objects;
    if (r_id != kNullTermId) {
      const TermId x2_id =
          reference_kb_->LookupTerm(subject.subject_reference);
      if (x2_id != kNullTermId) {
        // Fetch ALL r-facts of the subject (required by the PCA measure
        // and the paper's K^S construction) — paged, not truncated.
        PagedSelectOptions paging;
        paging.page_size = options_.facts_per_subject_cap;
        SOFYA_ASSIGN_OR_RETURN(
            ResultSet rows,
            PagedSelect(reference_kb_, queries::ObjectsOf(x2_id, r_id),
                        paging));
        r_objects.reserve(rows.rows.size());
        for (const auto& row : rows.rows) {
          SOFYA_ASSIGN_OR_RETURN(Term obj, reference_kb_->DecodeTerm(row[0]));
          r_objects.push_back(std::move(obj));
        }
      }
    }
    const bool x_has_r = !r_objects.empty();

    for (const auto& [y1, y2] : subject.objects) {
      PairEvidence pair;
      pair.x = subject.subject_reference;
      pair.y = y2;
      pair.x_has_r = x_has_r;
      if (literal_relation) {
        pair.confirmed = std::any_of(
            r_objects.begin(), r_objects.end(), [&](const Term& o) {
              return literal_matcher_.Matches(y1, o);
            });
      } else {
        pair.confirmed = std::find(r_objects.begin(), r_objects.end(), y2) !=
                         r_objects.end();
      }
      evidence.Add(pair);
    }
  }
  return evidence;
}

StatusOr<EvidenceSet> SimpleSampler::CollectEvidence(const Term& r_sub,
                                                     const Term& r) {
  SOFYA_ASSIGN_OR_RETURN(SimpleSample sample, DrawSample(r_sub));
  return ScoreAgainst(sample, r);
}

}  // namespace sofya
