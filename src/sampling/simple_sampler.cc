#include "sampling/simple_sampler.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sofya {

namespace {

/// Seed derivation: distinct relations shuffle differently under one base
/// seed, deterministically.
uint64_t SeedFor(uint64_t base_seed, const Term& relation) {
  const std::string& key = relation.lexical();
  return base_seed ^ Fnv1a(key.data(), key.size());
}

}  // namespace

SimpleSampler::SimpleSampler(Endpoint* candidate_kb, Endpoint* reference_kb,
                             const CrossKbTranslator* to_reference,
                             SamplerOptions options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_reference_(to_reference),
      options_(options),
      literal_matcher_(options.literal_options) {}

StatusOr<RelationKind> SimpleSampler::ProbeKind(const Term& relation,
                                                size_t probe_facts) {
  const TermId rel_id = candidate_kb_->LookupTerm(relation);
  if (rel_id == kNullTermId) return RelationKind::kEmpty;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet rows,
      candidate_kb_->Select(queries::FactsOfPredicate(rel_id, probe_facts)));
  if (rows.rows.empty()) return RelationKind::kEmpty;
  size_t literals = 0;
  for (const auto& row : rows.rows) {
    SOFYA_ASSIGN_OR_RETURN(Term object, candidate_kb_->DecodeTerm(row[1]));
    if (object.is_literal()) ++literals;
  }
  // Majority vote: mixed-object relations (rare, dirty data) take the
  // dominant kind.
  return literals * 2 >= rows.rows.size() ? RelationKind::kEntityLiteral
                                          : RelationKind::kEntityEntity;
}

StatusOr<SimpleSample> SimpleSampler::DrawSample(const Term& r_sub) {
  SimpleSample sample;
  const TermId rel_id = candidate_kb_->LookupTerm(r_sub);
  if (rel_id == kNullTermId) return sample;  // Unknown relation: empty.

  SOFYA_ASSIGN_OR_RETURN(RelationKind kind, ProbeKind(r_sub));
  sample.kind = kind;
  if (kind == RelationKind::kEmpty) return sample;
  const bool literal_relation = kind == RelationKind::kEntityLiteral;

  // Step 1: scan window of r_sub facts.
  PagedSelectOptions page_options;
  page_options.page_size = options_.page_size;
  SOFYA_ASSIGN_OR_RETURN(
      ResultSet window,
      PagedSelect(candidate_kb_,
                  queries::FactsOfPredicate(rel_id, options_.scan_limit),
                  page_options));
  sample.facts_scanned = window.rows.size();

  // Distinct subjects in first-seen order, then shuffled (pseudo-random).
  std::vector<TermId> subject_ids;
  std::unordered_set<TermId> seen_subjects;
  for (const auto& row : window.rows) {
    if (seen_subjects.insert(row[0]).second) subject_ids.push_back(row[0]);
  }
  Rng rng(SeedFor(options_.seed, r_sub));
  Shuffle(rng, subject_ids);

  // Steps 2-3: qualify subjects and translate their facts. Link
  // qualification is client-side, so each wave of linkable subjects is
  // known before the endpoint is touched: their per-subject fact fetches go
  // out as one SelectMany batch (cache-aware, dedup-able) instead of one
  // query each. Waves repeat only when subjects turn out to have no
  // linkable object, so the issued queries match the sequential schedule.
  size_t next = 0;
  while (sample.subjects.size() < options_.sample_size &&
         next < subject_ids.size()) {
    struct Pending {
      Term x1;  // Subject in K'.
      Term x2;  // Its sameAs image in K.
    };
    std::vector<Pending> wave;
    std::vector<SelectQuery> fact_queries;
    const size_t need = options_.sample_size - sample.subjects.size();
    while (wave.size() < need && next < subject_ids.size()) {
      const TermId subject_id = subject_ids[next++];
      SOFYA_ASSIGN_OR_RETURN(Term x1, candidate_kb_->DecodeTerm(subject_id));
      auto x2 = to_reference_->Translate(x1);
      if (!x2.ok()) {
        ++sample.subjects_skipped;  // Subject itself has no link.
        continue;
      }
      // Fetch all r_sub facts of this subject (bounded).
      SelectQuery q = queries::ObjectsOf(subject_id, rel_id);
      q.Limit(options_.facts_per_subject_cap);
      wave.push_back(Pending{std::move(x1), std::move(x2).value()});
      fact_queries.push_back(std::move(q));
    }
    if (wave.empty()) break;

    SOFYA_ASSIGN_OR_RETURN(std::vector<ResultSet> fact_results,
                           candidate_kb_->SelectMany(fact_queries).IntoValues());
    for (size_t i = 0; i < wave.size(); ++i) {
      SampledSubject entry;
      entry.subject_candidate = std::move(wave[i].x1);
      entry.subject_reference = std::move(wave[i].x2);
      for (const auto& row : fact_results[i].rows) {
        SOFYA_ASSIGN_OR_RETURN(Term y1, candidate_kb_->DecodeTerm(row[0]));
        if (literal_relation) {
          if (!y1.is_literal()) continue;  // Skip minority-kind objects.
          entry.objects.emplace_back(y1, y1);
          continue;
        }
        auto y2 = to_reference_->Translate(y1);
        if (!y2.ok()) continue;  // Unlinked object: ignored, not penalized.
        entry.objects.emplace_back(std::move(y1), std::move(y2).value());
      }

      if (entry.objects.empty()) {
        ++sample.subjects_skipped;  // No linkable fact for this subject.
        continue;
      }
      sample.subjects.push_back(std::move(entry));
    }
  }
  return sample;
}

StatusOr<EvidenceSet> SimpleSampler::ScoreAgainst(const SimpleSample& sample,
                                                  const Term& r) {
  EvidenceSet evidence;
  if (sample.kind == RelationKind::kEmpty) return evidence;
  const bool literal_relation = sample.kind == RelationKind::kEntityLiteral;

  const TermId r_id = reference_kb_->LookupTerm(r);

  // One reference query per subject: all r-objects of x2. This is both the
  // confirmation probe and the PCA-denominator probe, and it honors the
  // paper's note that once a subject matches, all of its r facts are
  // needed. The sample is fully drawn at this point, so every probe is
  // known up front — batch them (paged, not truncated: required by the PCA
  // measure and the paper's K^S construction).
  std::vector<std::vector<Term>> r_objects_by_subject(sample.subjects.size());
  if (r_id != kNullTermId) {
    std::vector<SelectQuery> probes;
    std::vector<size_t> probe_subject;
    for (size_t i = 0; i < sample.subjects.size(); ++i) {
      const TermId x2_id =
          reference_kb_->LookupTerm(sample.subjects[i].subject_reference);
      if (x2_id == kNullTermId) continue;
      probes.push_back(queries::ObjectsOf(x2_id, r_id));
      probe_subject.push_back(i);
    }
    PagedSelectOptions paging;
    paging.page_size = options_.facts_per_subject_cap;
    SOFYA_ASSIGN_OR_RETURN(
        std::vector<ResultSet> probe_results,
        BatchedPagedSelect(reference_kb_, probes, paging).IntoValues());
    for (size_t m = 0; m < probe_results.size(); ++m) {
      std::vector<Term>& objects = r_objects_by_subject[probe_subject[m]];
      objects.reserve(probe_results[m].rows.size());
      for (const auto& row : probe_results[m].rows) {
        SOFYA_ASSIGN_OR_RETURN(Term obj, reference_kb_->DecodeTerm(row[0]));
        objects.push_back(std::move(obj));
      }
    }
  }

  for (size_t si = 0; si < sample.subjects.size(); ++si) {
    const SampledSubject& subject = sample.subjects[si];
    const std::vector<Term>& r_objects = r_objects_by_subject[si];
    const bool x_has_r = !r_objects.empty();

    for (const auto& [y1, y2] : subject.objects) {
      PairEvidence pair;
      pair.x = subject.subject_reference;
      pair.y = y2;
      pair.x_has_r = x_has_r;
      if (literal_relation) {
        pair.confirmed = std::any_of(
            r_objects.begin(), r_objects.end(), [&](const Term& o) {
              return literal_matcher_.Matches(y1, o);
            });
      } else {
        pair.confirmed = std::find(r_objects.begin(), r_objects.end(), y2) !=
                         r_objects.end();
      }
      evidence.Add(pair);
    }
  }
  return evidence;
}

StatusOr<EvidenceSet> SimpleSampler::CollectEvidence(const Term& r_sub,
                                                     const Term& r) {
  SOFYA_ASSIGN_OR_RETURN(SimpleSample sample, DrawSample(r_sub));
  return ScoreAgainst(sample, r);
}

}  // namespace sofya
