// UnbiasedSampler — "Unbiased Sample Extraction" (UBS, paper Section 2.2).
//
// Random samples systematically miss the counter-examples that expose two
// failure modes of PCA confidence:
//
//   * a subsumption mistaken for an equivalence (composerOf => creatorOf is
//     right, but creatorOf => composerOf needs composers who also wrote);
//   * an overlap mistaken for a subsumption (hasProducer "=>" directedBy
//     only because producers often direct).
//
// UBS deliberately samples where candidates *disagree*: for a pair of
// candidate relations r', r'' (both subsumed by the reference r on simple
// samples), it asks the candidate KB for subjects x with
//
//       r'(x,y1) ∧ r''(x,y2) ∧ ¬r'(x,y2)
//
// and checks the reference KB:
//   case 1:  r(x,y1) ∧ r(x,y2)   => equivalence counter-example for r'
//            (r reaches y2, r' provably does not);
//   case 2:  r(x,y1) ∧ ¬r(x,y2)  => subsumption counter-example for r''
//            (K knows x's r-attributes yet y2 is absent — a true PCA
//            counter-example random sampling missed).
//
// "To eliminate a wrong relation we need only one case which shows that
// there is a contradiction" (Section 3) — the threshold is configurable.

#ifndef SOFYA_SAMPLING_UNBIASED_SAMPLER_H_
#define SOFYA_SAMPLING_UNBIASED_SAMPLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "endpoint/endpoint.h"
#include "sameas/translator.h"
#include "sampling/sampler_options.h"
#include "similarity/literal_matcher.h"
#include "util/status.h"

namespace sofya {

/// Counter-example tallies from one UBS probe run.
struct UbsReport {
  /// Case-2 contradictions per candidate: evidence that the candidate is
  /// NOT subsumed by the reference relation.
  std::map<Term, size_t> subsumption_counterexamples;

  /// Case-1 contradictions per candidate: evidence that the reference is
  /// NOT subsumed by the candidate (kills equivalence, keeps subsumption).
  std::map<Term, size_t> equivalence_counterexamples;

  size_t pairs_probed = 0;   ///< Ordered candidate pairs examined.
  size_t rows_examined = 0;  ///< Disagreeing-object rows processed.

  /// Convenience: contradictions recorded against r' => r.
  size_t SubsumptionHits(const Term& candidate) const {
    auto it = subsumption_counterexamples.find(candidate);
    return it == subsumption_counterexamples.end() ? 0 : it->second;
  }
  /// Convenience: contradictions recorded against r => r'.
  size_t EquivalenceHits(const Term& candidate) const {
    auto it = equivalence_counterexamples.find(candidate);
    return it == equivalence_counterexamples.end() ? 0 : it->second;
  }
};

/// The UBS probe engine.
class UnbiasedSampler {
 public:
  /// Endpoints/translators not owned; must outlive the sampler.
  /// `to_reference` maps K' terms into K; `to_candidate` the converse
  /// (needed by the mirrored reference-side probe).
  UnbiasedSampler(Endpoint* candidate_kb, Endpoint* reference_kb,
                  const CrossKbTranslator* to_reference,
                  const CrossKbTranslator* to_candidate,
                  SamplerOptions options = {}, UbsOptions ubs_options = {});

  /// Probes every ordered pair of `candidates` against reference relation
  /// `r` and tallies counter-examples. Candidates should be the relations
  /// that survived the simple-sample confidence threshold.
  StatusOr<UbsReport> Probe(const Term& r, const std::vector<Term>& candidates);

  /// Mirrored probe for one candidate: contrasts the head `r` against its
  /// sibling relations in the *reference* KB (relations co-occurring with
  /// the candidate's instances). A row r(x,y1) ∧ r_k(x,y2) ∧ ¬r(x,y2) in K
  /// whose (x,y2) translates into a candidate fact r'(x,y2) is a PCA
  /// counter-example against r' => r; a row whose (x,y1) is missing from a
  /// non-empty r'(x,·) is a counter-example against r => r' (equivalence).
  Status ProbeReferenceSiblings(const Term& r, const Term& candidate,
                                const std::vector<Term>& reference_siblings,
                                UbsReport* report);

  const UbsOptions& ubs_options() const { return ubs_options_; }

 private:
  /// Objects of `relation` for `subject` on `endpoint` (decoded), memoized.
  StatusOr<std::vector<Term>> ObjectsOf(Endpoint* endpoint,
                                        const Term& subject,
                                        const Term& relation);

  /// Warms the ObjectsOf memo for every (subject, relation) pair in one
  /// batched round trip (first pages via SelectMany, stragglers paged).
  /// Already-memoized and duplicate pairs are skipped.
  Status PrefetchObjects(
      Endpoint* endpoint,
      const std::vector<std::pair<Term, Term>>& subject_relation_pairs);

  /// One dictionary-encoded existence probe 〈s, p, o〉.
  struct TriProbe {
    TermId s, p, o;
  };

  /// Warms the existence memo for a batch of exact-triple probes via one
  /// Endpoint::AskMany round trip. An ASK ships zero rows, so for
  /// IRI-object checks this replaces fetching a subject's whole (paged)
  /// object list. Memoized/duplicate probes are skipped.
  Status PrefetchExistence(Endpoint* endpoint,
                           const std::vector<TriProbe>& probes);

  /// Memoized 〈s, p, o〉 existence on `endpoint` (single ASK on miss).
  StatusOr<bool> TripleExists(Endpoint* endpoint, TriProbe probe);

  /// Membership with literal tolerance.
  bool ContainsTerm(const std::vector<Term>& objects, const Term& value) const;

  /// Contradiction count past which further probing cannot change the
  /// aligner's verdict (see UbsOptions::contradiction_support_ratio).
  size_t SettleBound() const;

  /// Disagreement rows for (p1, p2) from two OFFSET-spread windows.
  StatusOr<ResultSet> FetchDisagreeingRows(Endpoint* endpoint, TermId p1,
                                           TermId p2);

  Endpoint* candidate_kb_;   // K'. Not owned.
  Endpoint* reference_kb_;   // K.  Not owned.
  const CrossKbTranslator* to_reference_;  // Not owned.
  const CrossKbTranslator* to_candidate_;  // Not owned.
  SamplerOptions options_;
  UbsOptions ubs_options_;
  LiteralMatcher literal_matcher_;

  struct CacheKey {
    const Endpoint* endpoint;
    Term subject;
    Term relation;
    bool operator==(const CacheKey& other) const {
      return endpoint == other.endpoint && subject == other.subject &&
             relation == other.relation;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  std::unordered_map<CacheKey, std::vector<Term>, CacheKeyHash> object_cache_;

  struct AskKey {
    const Endpoint* endpoint;
    TermId s, p, o;
    bool operator==(const AskKey& other) const {
      return endpoint == other.endpoint && s == other.s && p == other.p &&
             o == other.o;
    }
  };
  struct AskKeyHash {
    size_t operator()(const AskKey& key) const;
  };
  std::unordered_map<AskKey, bool, AskKeyHash> ask_cache_;
};

}  // namespace sofya

#endif  // SOFYA_SAMPLING_UNBIASED_SAMPLER_H_
