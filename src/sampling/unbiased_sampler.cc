#include "sampling/unbiased_sampler.h"

#include <algorithm>
#include <unordered_set>

#include "endpoint/paged_select.h"
#include "endpoint/query_forms.h"
#include "util/hash.h"

namespace sofya {

size_t UnbiasedSampler::CacheKeyHash::operator()(const CacheKey& key) const {
  size_t seed = std::hash<const void*>{}(key.endpoint);
  HashCombine(seed, TermHash{}(key.subject));
  HashCombine(seed, TermHash{}(key.relation));
  return seed;
}

size_t UnbiasedSampler::AskKeyHash::operator()(const AskKey& key) const {
  size_t seed = std::hash<const void*>{}(key.endpoint);
  HashCombine(seed, std::hash<TermId>{}(key.s));
  HashCombine(seed, std::hash<TermId>{}(key.p));
  HashCombine(seed, std::hash<TermId>{}(key.o));
  return seed;
}

namespace {

/// ASK 〈s, p, o〉 as the supported query subset: the ObjectsOf shape with
/// the object pinned by a FILTER. The engine's ASK path still terminates at
/// the first (only possible) solution.
SelectQuery ExistenceProbe(TermId s, TermId p, TermId o) {
  SelectQuery probe = queries::ObjectsOf(s, p);
  probe.Filter(FilterExpr::VarEqTerm(0, o));
  return probe;
}

}  // namespace

UnbiasedSampler::UnbiasedSampler(Endpoint* candidate_kb,
                                 Endpoint* reference_kb,
                                 const CrossKbTranslator* to_reference,
                                 const CrossKbTranslator* to_candidate,
                                 SamplerOptions options,
                                 UbsOptions ubs_options)
    : candidate_kb_(candidate_kb),
      reference_kb_(reference_kb),
      to_reference_(to_reference),
      to_candidate_(to_candidate),
      options_(options),
      ubs_options_(ubs_options),
      literal_matcher_(options.literal_options) {}

StatusOr<std::vector<Term>> UnbiasedSampler::ObjectsOf(Endpoint* endpoint,
                                                       const Term& subject,
                                                       const Term& relation) {
  CacheKey key{endpoint, subject, relation};
  auto it = object_cache_.find(key);
  if (it != object_cache_.end()) return it->second;

  std::vector<Term> objects;
  const TermId s_id = endpoint->LookupTerm(subject);
  const TermId p_id = endpoint->LookupTerm(relation);
  if (s_id != kNullTermId && p_id != kNullTermId) {
    // Completeness matters: a truncated object list turns "r has y" into a
    // phantom counter-example. Page through everything the subject has.
    PagedSelectOptions paging;
    paging.page_size = options_.facts_per_subject_cap;
    SOFYA_ASSIGN_OR_RETURN(
        ResultSet rows,
        PagedSelect(endpoint, queries::ObjectsOf(s_id, p_id), paging));
    objects.reserve(rows.rows.size());
    for (const auto& row : rows.rows) {
      SOFYA_ASSIGN_OR_RETURN(Term obj, endpoint->DecodeTerm(row[0]));
      objects.push_back(std::move(obj));
    }
  }
  object_cache_.emplace(std::move(key), objects);
  return objects;
}

Status UnbiasedSampler::PrefetchObjects(
    Endpoint* endpoint,
    const std::vector<std::pair<Term, Term>>& subject_relation_pairs) {
  std::vector<CacheKey> keys;
  std::vector<SelectQuery> probes;
  std::unordered_set<CacheKey, CacheKeyHash> pending;
  for (const auto& [subject, relation] : subject_relation_pairs) {
    CacheKey key{endpoint, subject, relation};
    if (object_cache_.find(key) != object_cache_.end()) continue;
    if (!pending.insert(key).second) continue;  // Duplicate in this batch.
    const TermId s_id = endpoint->LookupTerm(subject);
    const TermId p_id = endpoint->LookupTerm(relation);
    if (s_id == kNullTermId || p_id == kNullTermId) {
      // Unknown terms have no facts; memoize the empty answer query-free.
      object_cache_.emplace(std::move(key), std::vector<Term>());
      continue;
    }
    keys.push_back(std::move(key));
    probes.push_back(queries::ObjectsOf(s_id, p_id));
  }
  if (probes.empty()) return Status::OK();

  // Completeness matters: a truncated object list turns "r has y" into a
  // phantom counter-example. Page through everything each subject has.
  PagedSelectOptions paging;
  paging.page_size = options_.facts_per_subject_cap;
  SelectBatchResult batch = BatchedPagedSelect(endpoint, probes, paging);
  // Memoize only successful slots: a failed fetch must not leave behind
  // empty entries that later reads would mistake for "subject has no
  // facts". The successes are banked BEFORE the error is reported, so a
  // retried probe pass re-fetches only what actually failed.
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!batch.statuses[i].ok()) continue;
    std::vector<Term> objects;
    objects.reserve(batch.values[i].rows.size());
    for (const auto& row : batch.values[i].rows) {
      SOFYA_ASSIGN_OR_RETURN(Term obj, endpoint->DecodeTerm(row[0]));
      objects.push_back(std::move(obj));
    }
    object_cache_.emplace(std::move(keys[i]), std::move(objects));
  }
  return batch.FirstError();
}

Status UnbiasedSampler::PrefetchExistence(Endpoint* endpoint,
                                          const std::vector<TriProbe>& probes) {
  std::vector<AskKey> keys;
  std::vector<SelectQuery> batch;
  for (const TriProbe& probe : probes) {
    AskKey key{endpoint, probe.s, probe.p, probe.o};
    if (ask_cache_.find(key) != ask_cache_.end()) continue;
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    keys.push_back(key);
    batch.push_back(ExistenceProbe(probe.s, probe.p, probe.o));
  }
  if (batch.empty()) return Status::OK();

  AskBatchResult answers = endpoint->AskMany(batch);
  // Same banking rule as PrefetchObjects: memoize the probes that
  // answered, then surface the first failure (if any) by batch position.
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!answers.statuses[i].ok()) continue;
    ask_cache_.emplace(keys[i], answers.values[i]);
  }
  return answers.FirstError();
}

StatusOr<bool> UnbiasedSampler::TripleExists(Endpoint* endpoint,
                                             TriProbe probe) {
  AskKey key{endpoint, probe.s, probe.p, probe.o};
  auto it = ask_cache_.find(key);
  if (it != ask_cache_.end()) return it->second;
  SOFYA_ASSIGN_OR_RETURN(bool exists,
                         endpoint->Ask(ExistenceProbe(probe.s, probe.p,
                                                      probe.o)));
  ask_cache_.emplace(key, exists);
  return exists;
}

StatusOr<ResultSet> UnbiasedSampler::FetchDisagreeingRows(Endpoint* endpoint,
                                                          TermId p1,
                                                          TermId p2) {
  // Two windows at distant offsets: disagreement rows cluster on popular
  // subjects (one per object pair), so a single LIMIT window can be
  // dominated by a couple of entities. OFFSET-spread windows are the
  // standard pseudo-random sampling idiom against public endpoints.
  SelectQuery q =
      queries::SubjectsWithDisagreeingObjects(p1, p2, ubs_options_.probe_limit);
  SOFYA_ASSIGN_OR_RETURN(ResultSet first, endpoint->Select(q));
  if (first.rows.size() < ubs_options_.probe_limit) return first;

  SelectQuery far = queries::SubjectsWithDisagreeingObjects(
      p1, p2, ubs_options_.probe_limit);
  far.Offset(ubs_options_.probe_limit * 5);
  SOFYA_ASSIGN_OR_RETURN(ResultSet second, endpoint->Select(far));
  for (auto& row : second.rows) first.rows.push_back(std::move(row));
  return first;
}

size_t UnbiasedSampler::SettleBound() const {
  // Enough contradictions to exceed the support-relative threshold for any
  // plausible sample (support <= sample_size * facts_per_subject_cap is
  // theoretical; in practice support stays within a few dozen).
  const double by_ratio = ubs_options_.contradiction_support_ratio *
                          static_cast<double>(options_.sample_size) * 4.0;
  return std::max<size_t>(ubs_options_.min_contradictions,
                          static_cast<size_t>(by_ratio) + 1);
}

bool UnbiasedSampler::ContainsTerm(const std::vector<Term>& objects,
                                   const Term& value) const {
  if (value.is_literal()) {
    return std::any_of(objects.begin(), objects.end(), [&](const Term& o) {
      return literal_matcher_.Matches(value, o);
    });
  }
  return std::find(objects.begin(), objects.end(), value) != objects.end();
}

StatusOr<UbsReport> UnbiasedSampler::Probe(const Term& r,
                                           const std::vector<Term>& candidates) {
  UbsReport report;
  if (!ubs_options_.enable_equivalence_filter &&
      !ubs_options_.enable_subsumption_filter) {
    return report;  // Fully ablated: no probes, no cost.
  }

  for (const Term& r_prime : candidates) {
    for (const Term& r_dprime : candidates) {
      if (r_prime == r_dprime) continue;

      // Skip pairs whose verdicts are already settled. The bound is kept
      // far above min_contradictions because the aligner's pruning rule is
      // support-relative.
      const size_t settle = SettleBound();
      const bool need_equiv = ubs_options_.enable_equivalence_filter &&
                              report.EquivalenceHits(r_prime) < settle;
      const bool need_subsum = ubs_options_.enable_subsumption_filter &&
                               report.SubsumptionHits(r_dprime) < settle;
      if (!need_equiv && !need_subsum) continue;

      const TermId p1 = candidate_kb_->LookupTerm(r_prime);
      const TermId p2 = candidate_kb_->LookupTerm(r_dprime);
      if (p1 == kNullTermId || p2 == kNullTermId) continue;

      ++report.pairs_probed;
      SOFYA_ASSIGN_OR_RETURN(ResultSet rows,
                             FetchDisagreeingRows(candidate_kb_, p1, p2));

      // Phase A: decode the disagreement rows and batch-warm the memos with
      // every candidate-side probe this pair needs. IRI objects get an
      // exact-triple existence ASK (ships zero rows) through AskMany;
      // literal objects still need the subject's full object list for
      // similarity matching. Both memos dedup repeats, and the batches let
      // the endpoint stack dedup and cache across pairs and candidates.
      struct ProbeRow {
        Term x1, y1, y2;
        TermId x1_id, y2_id;
      };
      std::vector<ProbeRow> decoded;
      decoded.reserve(rows.rows.size());
      std::vector<std::pair<Term, Term>> candidate_probes;
      std::vector<TriProbe> existence_probes;
      for (const auto& row : rows.rows) {
        SOFYA_ASSIGN_OR_RETURN(Term x1, candidate_kb_->DecodeTerm(row[0]));
        SOFYA_ASSIGN_OR_RETURN(Term y1, candidate_kb_->DecodeTerm(row[1]));
        SOFYA_ASSIGN_OR_RETURN(Term y2, candidate_kb_->DecodeTerm(row[2]));
        ++report.rows_examined;
        if (y2.is_literal()) {
          candidate_probes.emplace_back(x1, r_prime);
        } else {
          existence_probes.push_back(TriProbe{row[0], p1, row[2]});
        }
        decoded.push_back(ProbeRow{std::move(x1), std::move(y1),
                                   std::move(y2), row[0], row[2]});
      }
      SOFYA_RETURN_IF_ERROR(PrefetchObjects(candidate_kb_, candidate_probes));
      SOFYA_RETURN_IF_ERROR(
          PrefetchExistence(candidate_kb_, existence_probes));

      // Phase B: rows surviving ¬r'(x, y2) and sameAs translation need a
      // reference-side probe; batch those too.
      struct Survivor {
        Term x2, ty1, ty2;
      };
      std::vector<Survivor> survivors;
      std::vector<std::pair<Term, Term>> reference_probes;
      for (const ProbeRow& pr : decoded) {
        // Enforce ¬r'(x, y2): the FILTER only guaranteed y1 != y2 per row.
        bool has_y2 = false;
        if (pr.y2.is_literal()) {
          SOFYA_ASSIGN_OR_RETURN(std::vector<Term> r_prime_objects,
                                 ObjectsOf(candidate_kb_, pr.x1, r_prime));
          has_y2 = ContainsTerm(r_prime_objects, pr.y2);
        } else {
          SOFYA_ASSIGN_OR_RETURN(
              has_y2,
              TripleExists(candidate_kb_, TriProbe{pr.x1_id, p1, pr.y2_id}));
        }
        if (has_y2) continue;

        // Translate the triple into K.
        auto x2 = to_reference_->Translate(pr.x1);
        if (!x2.ok()) continue;
        auto ty1 = to_reference_->Translate(pr.y1);
        if (!ty1.ok()) continue;
        auto ty2 = to_reference_->Translate(pr.y2);
        if (!ty2.ok()) continue;
        reference_probes.emplace_back(*x2, r);
        survivors.push_back(Survivor{std::move(x2).value(),
                                     std::move(ty1).value(),
                                     std::move(ty2).value()});
      }
      SOFYA_RETURN_IF_ERROR(PrefetchObjects(reference_kb_, reference_probes));

      // Phase C: tally counter-examples from the warmed memo.
      for (const Survivor& s : survivors) {
        SOFYA_ASSIGN_OR_RETURN(std::vector<Term> r_objects,
                               ObjectsOf(reference_kb_, s.x2, r));
        const bool has_y1 = ContainsTerm(r_objects, s.ty1);
        if (!has_y1) continue;  // K does not know x's r-attributes via y1.
        const bool has_y2 = ContainsTerm(r_objects, s.ty2);

        if (has_y2) {
          // Case 1: r(x,y1) ∧ r(x,y2) ∧ ¬r'(x,y2)  =>  r ⇏ r'.
          if (ubs_options_.enable_equivalence_filter) {
            ++report.equivalence_counterexamples[r_prime];
          }
        } else {
          // Case 2: r(x,y1) ∧ ¬r(x,y2) ∧ r''(x,y2)  =>  r'' ⇏ r.
          if (ubs_options_.enable_subsumption_filter) {
            ++report.subsumption_counterexamples[r_dprime];
          }
        }
      }
    }
  }
  return report;
}

Status UnbiasedSampler::ProbeReferenceSiblings(
    const Term& r, const Term& candidate,
    const std::vector<Term>& reference_siblings, UbsReport* report) {
  if (!ubs_options_.enable_reference_siblings) return Status::OK();

  const TermId r_id = reference_kb_->LookupTerm(r);
  if (r_id == kNullTermId) return Status::OK();

  for (const Term& sibling : reference_siblings) {
    if (sibling == r) continue;
    const size_t settle = SettleBound();
    const bool need_subsum = ubs_options_.enable_subsumption_filter &&
                             report->SubsumptionHits(candidate) < settle;
    const bool need_equiv = ubs_options_.enable_equivalence_filter &&
                            report->EquivalenceHits(candidate) < settle;
    if (!need_subsum && !need_equiv) break;

    const TermId sibling_id = reference_kb_->LookupTerm(sibling);
    if (sibling_id == kNullTermId) continue;

    ++report->pairs_probed;
    auto rows_or = FetchDisagreeingRows(reference_kb_, r_id, sibling_id);
    if (!rows_or.ok()) return rows_or.status();

    // Mirror of Probe's phases: decode + batch the reference-side probes
    // (exact-triple ASKs for IRI objects, object lists for literals),
    // filter, then batch the candidate-side probes for the survivors.
    struct ProbeRow {
      Term x2, y1, y2;
      TermId x2_id, y2_id;
    };
    std::vector<ProbeRow> decoded;
    decoded.reserve(rows_or->rows.size());
    std::vector<std::pair<Term, Term>> reference_probes;
    std::vector<TriProbe> existence_probes;
    for (const auto& row : rows_or->rows) {
      SOFYA_ASSIGN_OR_RETURN(Term x2, reference_kb_->DecodeTerm(row[0]));
      SOFYA_ASSIGN_OR_RETURN(Term y1, reference_kb_->DecodeTerm(row[1]));
      SOFYA_ASSIGN_OR_RETURN(Term y2, reference_kb_->DecodeTerm(row[2]));
      ++report->rows_examined;
      if (y2.is_literal()) {
        reference_probes.emplace_back(x2, r);
      } else {
        existence_probes.push_back(TriProbe{row[0], r_id, row[2]});
      }
      decoded.push_back(ProbeRow{std::move(x2), std::move(y1), std::move(y2),
                                 row[0], row[2]});
    }
    SOFYA_RETURN_IF_ERROR(PrefetchObjects(reference_kb_, reference_probes));
    SOFYA_RETURN_IF_ERROR(PrefetchExistence(reference_kb_, existence_probes));

    struct Survivor {
      const ProbeRow* row;
      Term x1;
    };
    std::vector<Survivor> survivors;
    std::vector<std::pair<Term, Term>> candidate_probes;
    for (const ProbeRow& pr : decoded) {
      // Enforce ¬r(x, y2) in K.
      bool has_y2 = false;
      if (pr.y2.is_literal()) {
        SOFYA_ASSIGN_OR_RETURN(std::vector<Term> r_objects,
                               ObjectsOf(reference_kb_, pr.x2, r));
        has_y2 = ContainsTerm(r_objects, pr.y2);
      } else {
        SOFYA_ASSIGN_OR_RETURN(
            has_y2,
            TripleExists(reference_kb_, TriProbe{pr.x2_id, r_id, pr.y2_id}));
      }
      if (has_y2) continue;

      auto x1 = to_candidate_->Translate(pr.x2);
      if (!x1.ok()) continue;
      candidate_probes.emplace_back(*x1, candidate);
      survivors.push_back(Survivor{&pr, std::move(x1).value()});
    }
    SOFYA_RETURN_IF_ERROR(PrefetchObjects(candidate_kb_, candidate_probes));

    for (const Survivor& s : survivors) {
      const Term& y1 = s.row->y1;
      const Term& y2 = s.row->y2;
      SOFYA_ASSIGN_OR_RETURN(std::vector<Term> candidate_objects,
                             ObjectsOf(candidate_kb_, s.x1, candidate));
      if (candidate_objects.empty()) continue;

      // Subsumption counter-example for candidate => r: the candidate
      // asserts (x, y2) but K, which knows x's r-attributes (y1 ∈ r(x,·)),
      // does not list y2.
      if (ubs_options_.enable_subsumption_filter) {
        auto ty2 = to_candidate_->Translate(y2);
        if (ty2.ok() && ContainsTerm(candidate_objects, *ty2)) {
          ++report->subsumption_counterexamples[candidate];
        }
      }

      // Equivalence counter-example for r => candidate: K asserts r(x,y1),
      // the candidate has facts for x but not y1.
      if (ubs_options_.enable_equivalence_filter) {
        auto ty1 = to_candidate_->Translate(y1);
        if (ty1.ok() && !ContainsTerm(candidate_objects, *ty1)) {
          ++report->equivalence_counterexamples[candidate];
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace sofya
