#include "similarity/minhash_lsh.h"

#include <algorithm>
#include <cctype>

#include "util/hash.h"
#include "util/random.h"

namespace sofya {
namespace {

/// Slot value of an empty shingle set. Real minima are 32-bit mixes and
/// can hit any value, but an all-sentinel signature only arises from the
/// empty set, so empties match empties and (almost surely) nothing else.
constexpr uint32_t kEmptySentinel = 0xffffffffu;

/// Finalizing mix (SplitMix64's): one shingle hash + one salt -> one
/// decorrelated draw per hash function.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

MinHashLsh::MinHashLsh(MinHashLshOptions options) : options_(options) {
  if (options_.ngram == 0) options_.ngram = 3;
  if (options_.num_hashes == 0 || options_.bands == 0 || options_.rows == 0 ||
      options_.bands * options_.rows != options_.num_hashes) {
    options_.num_hashes = 64;
    options_.bands = 32;
    options_.rows = 2;
  }
  SplitMix64 mix(options_.seed);
  salts_.reserve(options_.num_hashes);
  for (size_t i = 0; i < options_.num_hashes; ++i) salts_.push_back(mix.Next());
  bands_.resize(options_.bands);
}

std::vector<uint32_t> MinHashLsh::Signature(std::string_view text) const {
  std::vector<uint32_t> signature(options_.num_hashes, kEmptySentinel);
  if (text.empty()) return signature;
  // A label shorter than the n-gram width is one whole-text shingle —
  // otherwise "of" and "to" would both be the empty set and collide.
  const size_t n = std::min(options_.ngram, text.size());
  for (size_t i = 0; i + n <= text.size(); ++i) {
    const uint64_t shingle = Fnv1a(text.data() + i, n);
    for (size_t k = 0; k < salts_.size(); ++k) {
      const uint32_t h = static_cast<uint32_t>(Mix(shingle ^ salts_[k]) >> 32);
      if (h < signature[k]) signature[k] = h;
    }
  }
  return signature;
}

double MinHashLsh::SignatureSimilarity(std::span<const uint32_t> a,
                                       std::span<const uint32_t> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

uint64_t MinHashLsh::BandKey(std::span<const uint32_t> signature,
                             size_t band) const {
  const size_t begin = band * options_.rows;
  return Fnv1a(signature.data() + begin, options_.rows * sizeof(uint32_t));
}

void MinHashLsh::Insert(uint32_t id, std::string_view text) {
  const std::vector<uint32_t> signature = Signature(text);
  for (size_t band = 0; band < options_.bands; ++band) {
    bands_[band][BandKey(signature, band)].push_back(id);
  }
  ++size_;
}

std::vector<uint32_t> MinHashLsh::Lookup(std::string_view text,
                                         LookupStats* stats) const {
  const std::vector<uint32_t> signature = Signature(text);
  std::vector<uint32_t> out;
  LookupStats local;
  for (size_t band = 0; band < options_.bands; ++band) {
    ++local.buckets_probed;
    auto it = bands_[band].find(BandKey(signature, band));
    if (it == bands_[band].end()) continue;
    local.ids_scanned += it->second.size();
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) *stats = local;
  return out;
}

std::string RelationLabel(std::string_view iri) {
  // Local name: the suffix after the last IRI separator.
  const size_t cut = iri.find_last_of("/#:");
  std::string_view local =
      cut == std::string_view::npos ? iri : iri.substr(cut + 1);

  std::string out;
  out.reserve(local.size() + 8);
  bool pending_space = false;
  bool prev_lower = false;
  for (const char c : local) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '_' || c == '-' || c == '.' || std::isspace(u)) {
      pending_space = !out.empty();
      prev_lower = false;
      continue;
    }
    // camelCase boundary: a lower->UPPER transition starts a new token.
    if (std::isupper(u) && prev_lower) pending_space = true;
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += std::isupper(u)
               ? static_cast<char>(std::tolower(u))
               : c;  // Multi-byte UTF-8 (u >= 0x80) passes through as-is.
    prev_lower = std::islower(u) != 0 || std::isdigit(u) != 0;
  }
  // Drop a leading auxiliary token ("hasGenre" / "genre_type" should meet
  // at "genre ..."): these carry no discriminating n-grams and dilute the
  // Jaccard of otherwise-matching labels below the LSH band threshold.
  // Never strip down to the empty label (a relation literally named "has").
  for (const std::string_view prefix : {"has ", "have ", "is ", "was "}) {
    if (out.size() > prefix.size() &&
        std::string_view(out).substr(0, prefix.size()) == prefix) {
      out.erase(0, prefix.size());
      break;
    }
  }
  return out;
}

}  // namespace sofya
