#include "similarity/literal_matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "similarity/string_metrics.h"

namespace sofya {

namespace {

std::optional<double> TryParseNumber(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

const char* StringMetricName(StringMetric metric) {
  switch (metric) {
    case StringMetric::kLevenshtein:
      return "levenshtein";
    case StringMetric::kJaroWinkler:
      return "jaro-winkler";
    case StringMetric::kTokenJaccard:
      return "token-jaccard";
    case StringMetric::kBigramDice:
      return "bigram-dice";
    case StringMetric::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

double LiteralMatcher::ScoreStrings(const std::string& a,
                                    const std::string& b) const {
  const std::string na = options_.normalize ? NormalizeForMatching(a) : a;
  const std::string nb = options_.normalize ? NormalizeForMatching(b) : b;
  switch (options_.metric) {
    case StringMetric::kLevenshtein:
      return NormalizedLevenshtein(na, nb);
    case StringMetric::kJaroWinkler:
      return JaroWinklerSimilarity(na, nb);
    case StringMetric::kTokenJaccard:
      return TokenJaccard(na, nb);
    case StringMetric::kBigramDice:
      return BigramDice(na, nb);
    case StringMetric::kHybrid:
      return std::max(JaroWinklerSimilarity(na, nb), TokenJaccard(na, nb));
  }
  return 0.0;
}

double LiteralMatcher::Score(const Term& a, const Term& b) const {
  if (!a.is_literal() || !b.is_literal()) {
    return a == b ? 1.0 : 0.0;
  }
  if (options_.numeric_aware) {
    const auto na = TryParseNumber(a.lexical());
    const auto nb = TryParseNumber(b.lexical());
    if (na.has_value() && nb.has_value()) {
      const double diff = std::fabs(*na - *nb);
      const double scale =
          std::max({std::fabs(*na), std::fabs(*nb), 1e-30});
      return diff / scale <= options_.numeric_relative_tolerance ? 1.0 : 0.0;
    }
    // A number and a non-number never match by value; fall through to the
    // string metric only when neither side parses.
    if (na.has_value() != nb.has_value()) return 0.0;
  }
  return ScoreStrings(a.lexical(), b.lexical());
}

}  // namespace sofya
