#include "similarity/string_metrics.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace sofya {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter.
  if (a.empty()) return b.size();

  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;

  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t insert_cost = row[i - 1] + 1;
      const size_t delete_cost = row[i] + 1;
      const size_t subst_cost = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({insert_cost, delete_cost, subst_cost});
    }
  }
  return row[a.size()];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 -
         static_cast<double>(LevenshteinDistance(a, b)) /
             static_cast<double>(max_len);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t max_len = std::max(a.size(), b.size());
  const size_t window = max_len / 2 == 0 ? 0 : max_len / 2 - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  const auto ta = SplitWhitespace(ToLower(a));
  const auto tb = SplitWhitespace(ToLower(b));
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double BigramDice(std::string_view a, std::string_view b) {
  if (a == b) return 1.0;
  if (a.size() < 2 || b.size() < 2) {
    return a == b ? 1.0 : 0.0;
  }
  auto bigrams = [](std::string_view s) {
    std::unordered_set<std::string> out;
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      out.insert(std::string(s.substr(i, 2)));
    }
    return out;
  };
  const auto ba = bigrams(a);
  const auto bb = bigrams(b);
  size_t inter = 0;
  for (const auto& g : ba) {
    if (bb.count(g)) ++inter;
  }
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ba.size() + bb.size());
}

std::string NormalizeForMatching(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_space = true;  // Leading spaces trimmed.
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      out += static_cast<char>(std::tolower(c));
      last_space = false;
    } else if (!last_space) {
      out += ' ';
      last_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace sofya
