// MinHash signatures + banded LSH over character n-grams.
//
// The lexical candidate source needs "which of these P relation labels look
// like this one?" to stay sub-linear in P: at DBpedia scale (tens of
// thousands of properties, millions across a federation) scoring every
// label per reference relation is the accidental O(P) the planner-side
// work already avoided. The classic fix is the MinHash/LSH lattice:
//
//   * each label is shingled into character n-grams;
//   * k independent hash functions (one SplitMix64-derived salt each) map
//     the shingle set to a k-slot signature of minima — the probability
//     that two signatures agree in one slot equals the Jaccard similarity
//     of the shingle sets;
//   * the signature is cut into b bands of r rows (b*r = k); each band
//     hashes to a bucket, and two labels become lookup neighbors iff they
//     share at least one band bucket. P(neighbor) = 1 - (1 - J^r)^b, the
//     usual S-curve: near-duplicates almost surely collide, unrelated
//     labels almost surely don't, and a lookup touches only bucket mates.
//
// Determinism: the hash family is derived from a fixed seed, insertion ids
// are caller-assigned, and Lookup returns sorted unique ids — equal inputs
// give bit-identical results on any platform/thread. The index is
// immutable after Build/Insert from a single thread; concurrent *reads*
// (Signature, Lookup) are safe.

#ifndef SOFYA_SIMILARITY_MINHASH_LSH_H_
#define SOFYA_SIMILARITY_MINHASH_LSH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sofya {

/// Index shape knobs. `bands * rows` must equal `num_hashes` (checked at
/// construction; violations are clamped to the default 32x2 = 64 layout).
struct MinHashLshOptions {
  /// Character n-gram width in bytes. Labels shorter than this contribute
  /// their whole text as a single shingle; the empty label has no shingles
  /// and gets the empty-set sentinel signature.
  size_t ngram = 3;
  /// Signature length (number of hash functions).
  size_t num_hashes = 64;
  /// LSH banding: bands x rows, bands * rows == num_hashes. 32x2 puts the
  /// S-curve threshold near J ~ (1/32)^(1/2) = 0.18 — relation labels are
  /// short, so true variants ("director" / "directed by") often sit at
  /// J 0.2-0.4; stricter rows would drop them before scoring sees them.
  size_t bands = 32;
  size_t rows = 2;
  /// Seed of the SplitMix64-derived hash family. Two indexes built with
  /// equal seeds assign identical signatures and buckets.
  uint64_t seed = 0x534f4659414c5348ULL;  // "SOFYALSH"
};

/// The index. Ids are caller-assigned (typically positions in a parallel
/// vector of labels/terms).
class MinHashLsh {
 public:
  explicit MinHashLsh(MinHashLshOptions options = {});

  const MinHashLshOptions& options() const { return options_; }

  /// MinHash signature of `text` (size = options().num_hashes). Pure and
  /// thread-safe. The empty string (no shingles) yields the all-sentinel
  /// signature, which only collides with other empty strings.
  std::vector<uint32_t> Signature(std::string_view text) const;

  /// Fraction of agreeing signature slots — an unbiased estimate of the
  /// Jaccard similarity of the two shingle sets. Two empty-set sentinel
  /// signatures agree everywhere (two empty labels ARE identical).
  static double SignatureSimilarity(std::span<const uint32_t> a,
                                    std::span<const uint32_t> b);

  /// Inserts `text` under `id`. Ids should be unique; re-inserting an id
  /// adds duplicate bucket entries (harmless for Lookup, which dedups).
  void Insert(uint32_t id, std::string_view text);

  /// Lookup cost accounting (the sub-linearity evidence the bench records).
  struct LookupStats {
    size_t buckets_probed = 0;  ///< Always == options().bands.
    size_t ids_scanned = 0;     ///< Bucket-mate entries touched (pre-dedup).
  };

  /// All ids sharing at least one band bucket with `text`, sorted
  /// ascending, deduplicated. Cost is O(sum of probed bucket sizes), not
  /// O(size()).
  std::vector<uint32_t> Lookup(std::string_view text,
                               LookupStats* stats = nullptr) const;

  /// Number of Insert calls.
  size_t size() const { return size_; }

 private:
  /// Bucket key of one band of a signature.
  uint64_t BandKey(std::span<const uint32_t> signature, size_t band) const;

  MinHashLshOptions options_;
  std::vector<uint64_t> salts_;  ///< One per hash function.
  /// Per-band bucket maps: band key -> ids (insertion order).
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> bands_;
  size_t size_ = 0;
};

/// Normalizes a relation IRI into a matching label: the local name (after
/// the last '/', '#' or ':'), camelCase split at case boundaries, '_'/'-'
/// treated as spaces, lowercased, whitespace collapsed. Both KBs' naming
/// conventions ("hasBirthPlace", "birth_place") land on comparable token
/// streams, and one leading auxiliary token (has/have/is/was) is dropped so
/// "hasBirthPlace" and "birth_place" both land on "birth place". Multi-byte
/// UTF-8 is passed through untouched (no case folding outside ASCII).
std::string RelationLabel(std::string_view iri);

}  // namespace sofya

#endif  // SOFYA_SIMILARITY_MINHASH_LSH_H_
