// String similarity metrics for entity-literal alignment.
//
// The paper (Section 2.2): "If r_sub is an entity-literal relation, we
// retrieve from K facts of the samples S and apply string similarity
// functions to align the literals." These are those functions. All metrics
// return values in [0, 1], 1 = identical.

#ifndef SOFYA_SIMILARITY_STRING_METRICS_H_
#define SOFYA_SIMILARITY_STRING_METRICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sofya {

/// Classic edit distance (insert/delete/substitute, unit costs).
/// O(|a|*|b|) time, O(min) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - dist / max(|a|, |b|); 1.0 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity (match window = max(|a|,|b|)/2 - 1).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by common prefix (length <= 4) with scaling
/// factor `prefix_scale` (standard 0.1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Jaccard overlap of lower-cased whitespace tokens.
double TokenJaccard(std::string_view a, std::string_view b);

/// Dice coefficient over character bigrams (robust to word reordering).
double BigramDice(std::string_view a, std::string_view b);

/// Normalization used before comparing literal surfaces: lower-case,
/// strip punctuation to spaces, collapse whitespace runs, trim.
std::string NormalizeForMatching(std::string_view s);

}  // namespace sofya

#endif  // SOFYA_SIMILARITY_STRING_METRICS_H_
