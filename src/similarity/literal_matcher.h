// LiteralMatcher: decides whether two literal terms denote the same value.
//
// Entity-literal relations are aligned by matching literal objects instead
// of following sameAs links (paper, Section 2.2). The matcher is
// datatype-aware: numeric and date literals are compared by value, strings
// by a configurable similarity metric over normalized surfaces.

#ifndef SOFYA_SIMILARITY_LITERAL_MATCHER_H_
#define SOFYA_SIMILARITY_LITERAL_MATCHER_H_

#include <string>

#include "rdf/term.h"

namespace sofya {

/// Which string metric the matcher uses for non-numeric literals.
enum class StringMetric {
  kLevenshtein,
  kJaroWinkler,
  kTokenJaccard,
  kBigramDice,
  /// max(JaroWinkler, TokenJaccard): tolerant to both typos and reordering.
  kHybrid,
};

/// Human-readable metric name (for reports).
const char* StringMetricName(StringMetric metric);

/// Configuration for LiteralMatcher.
struct LiteralMatcherOptions {
  StringMetric metric = StringMetric::kHybrid;
  /// Minimum similarity score to call two strings a match.
  double threshold = 0.85;
  /// Compare parseable numbers by value (relative tolerance) regardless of
  /// surface form ("42" matches "42.0").
  bool numeric_aware = true;
  double numeric_relative_tolerance = 1e-9;
  /// Normalize (case/punctuation) before string comparison.
  bool normalize = true;
};

/// Stateless matcher (cheap to copy).
class LiteralMatcher {
 public:
  explicit LiteralMatcher(LiteralMatcherOptions options = {})
      : options_(options) {}

  const LiteralMatcherOptions& options() const { return options_; }

  /// Similarity in [0,1] between two literal terms. Non-literal terms score
  /// 1.0 only on exact equality, else 0.0.
  double Score(const Term& a, const Term& b) const;

  /// Score(a,b) >= threshold.
  bool Matches(const Term& a, const Term& b) const {
    return Score(a, b) >= options_.threshold;
  }

  /// Raw string scoring with the configured metric (post-normalization).
  double ScoreStrings(const std::string& a, const std::string& b) const;

 private:
  LiteralMatcherOptions options_;
};

}  // namespace sofya

#endif  // SOFYA_SIMILARITY_LITERAL_MATCHER_H_
