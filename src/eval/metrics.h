// Precision / recall / F1 accounting.

#ifndef SOFYA_EVAL_METRICS_H_
#define SOFYA_EVAL_METRICS_H_

#include <cstddef>
#include <string>

namespace sofya {

/// Confusion counts for a binary decision task (accepted vs gold).
struct PrecisionRecall {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  size_t accepted() const { return true_positives + false_positives; }
  size_t gold() const { return true_positives + false_negatives; }

  /// TP / (TP + FP); 0 when nothing was accepted.
  double precision() const {
    const size_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }

  /// TP / (TP + FN); 0 when the gold set is empty.
  double recall() const {
    const size_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }

  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// "P=0.95 R=0.99 F1=0.97 (tp=…, fp=…, fn=…)".
  std::string ToString() const;
};

}  // namespace sofya

#endif  // SOFYA_EVAL_METRICS_H_
