// The Table-1 experiment (paper Section 3): subsumption alignment between
// the YAGO-like and DBpedia-like KBs, both directions, three methods:
//
//   pcaconf @ τ*   — Simple Sample Extraction baseline, PCA confidence;
//   cwaconf @ τ*   — Simple Sample Extraction baseline, CWA confidence;
//   UBS (pcaconf)  — baseline + unbiased counter-example pruning.
//
// τ* is selected per measure exactly as in the paper: the grid value that
// maximizes mean F1 across both directions.

#ifndef SOFYA_EVAL_TABLE1_H_
#define SOFYA_EVAL_TABLE1_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "synth/world_generator.h"

namespace sofya {

/// Experiment configuration.
struct Table1Options {
  uint64_t seed = 2016;
  /// World scale in (0,1]; 1.0 = full 92/1313-relation world.
  double scale = 0.25;
  /// Subjects per candidate relation (paper: 10).
  size_t sample_size = 10;
  /// Align only the first N reference relations per direction (0 = all).
  size_t max_relations = 0;
  /// τ grid for the selection protocol.
  std::vector<double> tau_grid;  // Empty => DefaultTauGrid().
};

/// One row of the reproduced table.
struct Table1Row {
  std::string method;   ///< "pcaconf", "cwaconf", "UBS pcaconf".
  double tau = 0.0;     ///< Selected τ*.
  PrecisionRecall yago_in_dbpd;  ///< Direction kb1 ⊂ kb2.
  PrecisionRecall dbpd_in_yago;  ///< Direction kb2 ⊂ kb1.
};

/// The full report.
struct Table1Report {
  Table1Options options;
  WorldStats world_stats;
  std::string world_description;
  std::vector<Table1Row> rows;

  /// Query-cost summary across all four direction runs.
  uint64_t total_queries = 0;
  uint64_t total_rows_shipped = 0;
  double total_wall_ms = 0.0;

  /// Renders the table in the paper's layout (with the paper's numbers as
  /// a reference column).
  std::string ToAlignedTable() const;
  std::string ToCsv() const;
};

/// Runs the whole experiment.
StatusOr<Table1Report> RunTable1(const Table1Options& options);

}  // namespace sofya

#endif  // SOFYA_EVAL_TABLE1_H_
