#include "eval/experiment.h"

#include <algorithm>
#include <set>

#include "util/timer.h"

namespace sofya {

StatusOr<DirectionRun> RunDirection(
    Endpoint* candidate, Endpoint* reference, const SameAsIndex& links,
    const std::vector<std::string>& reference_relations,
    const DirectionRunOptions& options) {
  DirectionRun run;
  run.candidate_kb = candidate->name();
  run.reference_kb = reference->name();

  std::vector<std::string> heads = reference_relations;
  std::sort(heads.begin(), heads.end());
  if (options.max_relations > 0 && heads.size() > options.max_relations) {
    heads.resize(options.max_relations);
  }

  AlignerOptions aligner_options = options.aligner;
  ApplyRunSeed(&aligner_options, options.seed);
  RelationAligner aligner(candidate, reference, &links, aligner_options);

  const EndpointStats cand_before = candidate->stats();
  const EndpointStats ref_before = reference->stats();
  WallTimer timer;

  // Collect the per-head results, sequentially or fanned out. Verdicts are
  // identical either way (AlignMany's determinism guarantee); the run-level
  // cost below is a whole-run delta in both cases.
  std::vector<AlignmentResult> results;
  results.reserve(heads.size());
  if (options.num_threads > 1) {
    std::vector<Term> terms;
    terms.reserve(heads.size());
    for (const std::string& head_iri : heads) {
      terms.push_back(Term::Iri(head_iri));
    }
    AlignManyOptions fan_out;
    fan_out.num_threads = options.num_threads;
    fan_out.schedule = options.schedule;
    SOFYA_ASSIGN_OR_RETURN(AlignManyResult fleet,
                           aligner.AlignMany(terms, fan_out));
    results = std::move(fleet.results);
  } else {
    for (const std::string& head_iri : heads) {
      SOFYA_ASSIGN_OR_RETURN(AlignmentResult result,
                             aligner.Align(Term::Iri(head_iri)));
      results.push_back(std::move(result));
    }
  }

  for (size_t h = 0; h < heads.size(); ++h) {
    const std::string& head_iri = heads[h];
    run.attempted_heads.push_back(head_iri);
    const AlignmentResult& result = results[h];
    for (const CandidateVerdict& v : result.verdicts) {
      MinedRuleRecord record;
      record.body_iri = v.relation.lexical();
      record.head_iri = head_iri;
      record.cwa_conf = v.rule.cwa_conf;
      record.pca_conf = v.rule.pca_conf;
      record.support = v.rule.support;
      record.pairs = v.rule.body_size;
      record.pca_pairs = v.rule.pca_body_size;
      record.ubs_subsumption_pruned = v.ubs_subsumption_pruned;
      record.ubs_equivalence_pruned = v.ubs_equivalence_pruned;
      record.accepted = v.accepted;
      record.equivalence = v.equivalence;
      run.rules.push_back(std::move(record));
    }
  }

  run.wall_ms = timer.ElapsedMillis();
  const EndpointStats cand_after = candidate->stats();
  const EndpointStats ref_after = reference->stats();
  run.candidate_queries = cand_after.queries - cand_before.queries;
  run.reference_queries = ref_after.queries - ref_before.queries;
  run.rows_shipped =
      (cand_after.rows_returned - cand_before.rows_returned) +
      (ref_after.rows_returned - ref_before.rows_returned);
  run.simulated_latency_ms =
      (cand_after.simulated_latency_ms - cand_before.simulated_latency_ms) +
      (ref_after.simulated_latency_ms - ref_before.simulated_latency_ms);
  return run;
}

PrecisionRecall ScoreSubsumptions(const DirectionRun& run,
                                  const GroundTruth& truth,
                                  const ScorePolicy& policy) {
  PrecisionRecall pr;
  std::set<std::pair<std::string, std::string>> accepted;
  for (const MinedRuleRecord& rule : run.rules) {
    const double conf = policy.measure == ConfidenceMeasure::kPca
                            ? rule.pca_conf
                            : rule.cwa_conf;
    if (conf < policy.tau) continue;
    if (rule.pairs < policy.min_pairs) continue;
    if (rule.support < policy.min_support) continue;
    if (policy.apply_ubs && rule.ubs_subsumption_pruned) continue;
    accepted.insert({rule.body_iri, rule.head_iri});
  }

  for (const auto& [body, head] : accepted) {
    if (truth.Subsumes(body, head)) {
      ++pr.true_positives;
    } else {
      ++pr.false_positives;
    }
  }

  // Gold pairs restricted to the attempted heads.
  const std::set<std::string> heads(run.attempted_heads.begin(),
                                    run.attempted_heads.end());
  for (const auto& [body, head] :
       truth.AllSubsumptions(run.candidate_kb, run.reference_kb)) {
    if (!heads.count(head)) continue;
    if (!accepted.count({body, head})) ++pr.false_negatives;
  }
  return pr;
}

PrecisionRecall ScoreEquivalences(const DirectionRun& run,
                                  const GroundTruth& truth) {
  PrecisionRecall pr;
  std::set<std::pair<std::string, std::string>> accepted;
  for (const MinedRuleRecord& rule : run.rules) {
    if (rule.equivalence) accepted.insert({rule.body_iri, rule.head_iri});
  }
  for (const auto& [body, head] : accepted) {
    if (truth.Classify(body, head) == AlignKind::kEquivalence) {
      ++pr.true_positives;
    } else {
      ++pr.false_positives;
    }
  }
  const std::set<std::string> heads(run.attempted_heads.begin(),
                                    run.attempted_heads.end());
  for (const auto& [body, head] :
       truth.AllSubsumptions(run.candidate_kb, run.reference_kb)) {
    if (!heads.count(head)) continue;
    if (truth.Classify(body, head) != AlignKind::kEquivalence) continue;
    if (!accepted.count({body, head})) ++pr.false_negatives;
  }
  return pr;
}

const SweepPoint* SweepResult::best() const {
  for (const SweepPoint& p : points) {
    if (p.tau == best_tau) return &p;
  }
  return points.empty() ? nullptr : &points.front();
}

SweepResult SweepThreshold(const DirectionRun& run1, const DirectionRun& run2,
                           const GroundTruth& truth,
                           const std::vector<double>& taus,
                           ScorePolicy policy) {
  SweepResult result;
  double best_f1 = -1.0;
  for (double tau : taus) {
    SweepPoint point;
    point.tau = tau;
    policy.tau = tau;
    point.dir1 = ScoreSubsumptions(run1, truth, policy);
    point.dir2 = ScoreSubsumptions(run2, truth, policy);
    point.mean_f1 = (point.dir1.f1() + point.dir2.f1()) / 2.0;
    if (point.mean_f1 > best_f1) {
      best_f1 = point.mean_f1;
      result.best_tau = tau;
    }
    result.points.push_back(point);
  }
  return result;
}

std::vector<double> DefaultTauGrid() {
  std::vector<double> taus;
  for (int i = 1; i <= 19; ++i) taus.push_back(0.05 * i);
  return taus;
}

}  // namespace sofya
