#include "eval/metrics.h"

#include "util/string_util.h"

namespace sofya {

std::string PrecisionRecall::ToString() const {
  return StrFormat("P=%.2f R=%.2f F1=%.2f (tp=%zu fp=%zu fn=%zu)", precision(),
                   recall(), f1(), true_positives, false_positives,
                   false_negatives);
}

}  // namespace sofya
