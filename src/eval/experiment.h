// Direction runs: align every reference relation of one KB against
// candidates from the other, record every mined rule with both confidence
// values, and score against ground truth — possibly at many thresholds
// without re-running the (expensive) alignment.

#ifndef SOFYA_EVAL_EXPERIMENT_H_
#define SOFYA_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "align/relation_aligner.h"
#include "endpoint/endpoint.h"
#include "eval/metrics.h"
#include "synth/ground_truth.h"
#include "synth/world_generator.h"

namespace sofya {

/// One mined rule with everything needed for offline re-scoring.
struct MinedRuleRecord {
  std::string body_iri;  ///< r' in the candidate KB.
  std::string head_iri;  ///< r in the reference KB.
  double cwa_conf = 0.0;
  double pca_conf = 0.0;
  size_t support = 0;
  size_t pairs = 0;
  size_t pca_pairs = 0;
  bool ubs_subsumption_pruned = false;
  bool ubs_equivalence_pruned = false;
  bool accepted = false;     ///< Under the run's own measure/τ/UBS config.
  bool equivalence = false;  ///< Under the run's own config.
};

/// Everything produced by one direction run.
struct DirectionRun {
  std::string candidate_kb;  ///< KB tag of rule bodies.
  std::string reference_kb;  ///< KB tag of rule heads.
  std::vector<std::string> attempted_heads;  ///< Reference relations aligned.
  std::vector<MinedRuleRecord> rules;

  uint64_t candidate_queries = 0;
  uint64_t reference_queries = 0;
  uint64_t rows_shipped = 0;
  double simulated_latency_ms = 0.0;
  double wall_ms = 0.0;
};

/// Options for RunDirection.
struct DirectionRunOptions {
  AlignerOptions aligner;
  /// Align only the first N reference relations (0 = all). Relations are
  /// taken in sorted-IRI order for determinism.
  size_t max_relations = 0;
  /// Worker threads for the per-relation fan-out (RelationAligner::
  /// AlignMany). 1 = sequential. Rule records and scores are identical for
  /// any value; only wall_ms changes.
  size_t num_threads = 1;
  /// Task granularity of the fan-out (phase subtasks vs whole relations);
  /// affects wall_ms only, never the records.
  AlignSchedule schedule = AlignSchedule::kPhase;
  /// Run-level RNG seed: nonzero derives the finder and sampler seeds via
  /// ApplyRunSeed (one CLI --seed reproduces the whole run); 0 keeps the
  /// seeds already in `aligner`.
  uint64_t seed = 0;
};

/// Runs one direction: candidates from `candidate`, heads from `reference`
/// (every relation IRI in `reference_relations`).
StatusOr<DirectionRun> RunDirection(
    Endpoint* candidate, Endpoint* reference, const SameAsIndex& links,
    const std::vector<std::string>& reference_relations,
    const DirectionRunOptions& options);

/// Offline scoring policy (mirrors the aligner's acceptance gates so that
/// re-thresholding a τ=0 run reproduces what a live run would accept).
struct ScorePolicy {
  ConfidenceMeasure measure = ConfidenceMeasure::kPca;
  double tau = 0.3;
  /// Reject rules flagged ubs_subsumption_pruned.
  bool apply_ubs = false;
  size_t min_pairs = 2;
  size_t min_support = 3;
};

/// Scores a run's rules against `truth` under `policy`. False negatives are
/// gold subsumption pairs (restricted to the attempted heads) that were not
/// accepted.
PrecisionRecall ScoreSubsumptions(const DirectionRun& run,
                                  const GroundTruth& truth,
                                  const ScorePolicy& policy);

/// Scores the run's *equivalence* decisions (as recorded) against gold
/// equivalences over the attempted heads.
PrecisionRecall ScoreEquivalences(const DirectionRun& run,
                                  const GroundTruth& truth);

/// One τ point of a threshold sweep over two directions.
struct SweepPoint {
  double tau = 0.0;
  PrecisionRecall dir1;
  PrecisionRecall dir2;
  double mean_f1 = 0.0;
};

/// Sweep result with the argmax-by-mean-F1 τ (the paper's τ protocol).
struct SweepResult {
  std::vector<SweepPoint> points;
  double best_tau = 0.0;
  const SweepPoint* best() const;
};

/// Evaluates both direction runs on a τ grid (policy.tau is overridden by
/// each grid value).
SweepResult SweepThreshold(const DirectionRun& run1, const DirectionRun& run2,
                           const GroundTruth& truth,
                           const std::vector<double>& taus,
                           ScorePolicy policy);

/// The default τ grid {0.05, 0.10, ..., 0.95}.
std::vector<double> DefaultTauGrid();

}  // namespace sofya

#endif  // SOFYA_EVAL_EXPERIMENT_H_
