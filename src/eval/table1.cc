#include "eval/table1.h"

#include <utility>

#include "endpoint/local_endpoint.h"
#include "synth/presets.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

namespace sofya {

namespace {

/// Paper values for the reference column of the report.
struct PaperRow {
  const char* method;
  double p12, f12, p21, f21;
};
constexpr PaperRow kPaperRows[] = {
    {"pcaconf", 0.55, 0.58, 0.51, 0.48},
    {"cwaconf", 0.56, 0.59, 0.55, 0.53},
    {"UBS pcaconf", 0.95, 0.97, 0.91, 0.82},
};

}  // namespace

StatusOr<Table1Report> RunTable1(const Table1Options& options) {
  Table1Report report;
  report.options = options;

  SOFYA_ASSIGN_OR_RETURN(SynthWorld world,
                         GenerateWorld(YagoDbpediaSpec(options.seed,
                                                       options.scale)));
  report.world_stats = world.stats;
  report.world_description = DescribeWorld(world);

  LocalEndpoint yago(world.kb1.get());
  LocalEndpoint dbpd(world.kb2.get());

  const std::vector<std::string> dbpd_heads =
      world.truth.RelationsOf(world.kb2->name());
  const std::vector<std::string> yago_heads =
      world.truth.RelationsOf(world.kb1->name());

  const std::vector<double> taus =
      options.tau_grid.empty() ? DefaultTauGrid() : options.tau_grid;

  WallTimer total_timer;

  // ---- Baseline runs: accept-all, no UBS; re-threshold offline. --------
  DirectionRunOptions baseline;
  baseline.max_relations = options.max_relations;
  baseline.aligner.threshold = 0.0;
  baseline.aligner.use_ubs = false;
  baseline.aligner.check_equivalence = false;
  baseline.aligner.sampler.sample_size = options.sample_size;

  SOFYA_ASSIGN_OR_RETURN(
      DirectionRun base_12,
      RunDirection(&yago, &dbpd, world.links, dbpd_heads, baseline));
  SOFYA_ASSIGN_OR_RETURN(
      DirectionRun base_21,
      RunDirection(&dbpd, &yago, world.links, yago_heads, baseline));

  for (const auto& [measure, label] :
       {std::pair{ConfidenceMeasure::kPca, "pcaconf"},
        std::pair{ConfidenceMeasure::kCwa, "cwaconf"}}) {
    ScorePolicy policy;
    policy.measure = measure;
    SweepResult sweep =
        SweepThreshold(base_12, base_21, world.truth, taus, policy);
    Table1Row row;
    row.method = label;
    row.tau = sweep.best_tau;
    const SweepPoint* best = sweep.best();
    if (best != nullptr) {
      row.yago_in_dbpd = best->dir1;
      row.dbpd_in_yago = best->dir2;
    }
    report.rows.push_back(std::move(row));
  }

  // ---- UBS run: PCA at the selected τ*, counter-example pruning on. ----
  const double pca_tau = report.rows[0].tau;
  DirectionRunOptions ubs;
  ubs.max_relations = options.max_relations;
  ubs.aligner.measure = ConfidenceMeasure::kPca;
  ubs.aligner.threshold = pca_tau;
  ubs.aligner.use_ubs = true;
  ubs.aligner.check_equivalence = false;
  ubs.aligner.sampler.sample_size = options.sample_size;

  SOFYA_ASSIGN_OR_RETURN(
      DirectionRun ubs_12,
      RunDirection(&yago, &dbpd, world.links, dbpd_heads, ubs));
  SOFYA_ASSIGN_OR_RETURN(
      DirectionRun ubs_21,
      RunDirection(&dbpd, &yago, world.links, yago_heads, ubs));

  Table1Row ubs_row;
  ubs_row.method = "UBS pcaconf";
  ubs_row.tau = pca_tau;
  ScorePolicy ubs_policy;
  ubs_policy.measure = ConfidenceMeasure::kPca;
  ubs_policy.tau = pca_tau;
  ubs_policy.apply_ubs = true;
  ubs_row.yago_in_dbpd = ScoreSubsumptions(ubs_12, world.truth, ubs_policy);
  ubs_row.dbpd_in_yago = ScoreSubsumptions(ubs_21, world.truth, ubs_policy);
  report.rows.push_back(std::move(ubs_row));

  report.total_wall_ms = total_timer.ElapsedMillis();
  for (const DirectionRun* run : {&base_12, &base_21, &ubs_12, &ubs_21}) {
    report.total_queries += run->candidate_queries + run->reference_queries;
    report.total_rows_shipped += run->rows_shipped;
  }
  return report;
}

std::string Table1Report::ToAlignedTable() const {
  TableWriter table({"method", "tau", "yago⊂dbpd P", "yago⊂dbpd F1",
                     "dbpd⊂yago P", "dbpd⊂yago F1", "paper P/F1 | P/F1"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const Table1Row& row = rows[i];
    std::string paper = "-";
    if (i < std::size(kPaperRows)) {
      const PaperRow& p = kPaperRows[i];
      paper = StrFormat("%.2f/%.2f | %.2f/%.2f", p.p12, p.f12, p.p21, p.f21);
    }
    table.AddRow({row.method, FormatDouble(row.tau, 2),
                  FormatDouble(row.yago_in_dbpd.precision(), 2),
                  FormatDouble(row.yago_in_dbpd.f1(), 2),
                  FormatDouble(row.dbpd_in_yago.precision(), 2),
                  FormatDouble(row.dbpd_in_yago.f1(), 2), paper});
  }
  return table.ToAligned();
}

std::string Table1Report::ToCsv() const {
  TableWriter table({"method", "tau", "p_yago_in_dbpd", "f1_yago_in_dbpd",
                     "p_dbpd_in_yago", "f1_dbpd_in_yago"});
  for (const Table1Row& row : rows) {
    table.AddRow({row.method, FormatDouble(row.tau, 2),
                  FormatDouble(row.yago_in_dbpd.precision(), 4),
                  FormatDouble(row.yago_in_dbpd.f1(), 4),
                  FormatDouble(row.dbpd_in_yago.precision(), 4),
                  FormatDouble(row.dbpd_in_yago.f1(), 4)});
  }
  return table.ToCsv();
}

}  // namespace sofya
