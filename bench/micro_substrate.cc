// E8 — substrate micro-benchmarks (google-benchmark).
//
// Throughput of the pieces everything else stands on: triple-store inserts
// and pattern scans, BGP joins, dictionary interning, string metrics,
// sampler evidence collection, and world generation.

#include <benchmark/benchmark.h>

#include "core/sofya.h"

namespace sofya {
namespace {

void BM_TripleStoreInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    TripleStore store;
    Rng rng(7);
    for (int64_t i = 0; i < n; ++i) {
      store.Insert(static_cast<TermId>(1 + rng.Below(1000)),
                   static_cast<TermId>(1 + rng.Below(50)),
                   static_cast<TermId>(1 + rng.Below(1000)));
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TripleStoreInsert)->Arg(10000)->Arg(100000);

void BM_TripleStoreScanByPredicate(benchmark::State& state) {
  TripleStore store;
  Rng rng(7);
  for (int64_t i = 0; i < 200000; ++i) {
    store.Insert(static_cast<TermId>(1 + rng.Below(5000)),
                 static_cast<TermId>(1 + rng.Below(100)),
                 static_cast<TermId>(1 + rng.Below(5000)));
  }
  store.EnsureIndexed();
  TermId p = 1;
  for (auto _ : state) {
    size_t count = store.CountMatches(TriplePattern(0, p, 0));
    benchmark::DoNotOptimize(count);
    p = p % 100 + 1;
  }
}
BENCHMARK(BM_TripleStoreScanByPredicate);

void BM_DictionaryIntern(benchmark::State& state) {
  for (auto _ : state) {
    Dictionary dict;
    for (int i = 0; i < 10000; ++i) {
      dict.InternIri("http://kb.org/resource/entity_" + std::to_string(i));
    }
    benchmark::DoNotOptimize(dict.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_BgpTwoClauseJoin(benchmark::State& state) {
  TripleStore store;
  Rng rng(11);
  const TermId p1 = 1, p2 = 2;
  for (int i = 0; i < 50000; ++i) {
    store.Insert(static_cast<TermId>(10 + rng.Below(2000)),
                 rng.Bernoulli(0.5) ? p1 : p2,
                 static_cast<TermId>(10 + rng.Below(2000)));
  }
  store.EnsureIndexed();
  SelectQuery q;
  const VarId x = q.NewVar("x");
  const VarId y = q.NewVar("y");
  const VarId z = q.NewVar("z");
  q.Where(NodeRef::Variable(x), NodeRef::Constant(p1), NodeRef::Variable(y));
  q.Where(NodeRef::Variable(y), NodeRef::Constant(p2), NodeRef::Variable(z));
  q.Limit(1000);
  for (auto _ : state) {
    auto result = Evaluate(store, q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BgpTwoClauseJoin);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "Francis Albert Sinatra";
  const std::string b = "Frank Sinatra (singer)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  const std::string a = "Francis Albert Sinatra";
  const std::string b = "Frank Sinatra (singer)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_WorldGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto world = GenerateWorld(MoviesWorldSpec());
    benchmark::DoNotOptimize(world);
  }
}
BENCHMARK(BM_WorldGeneration);

void BM_SimpleSamplerEvidence(benchmark::State& state) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  CrossKbTranslator to_ref(&world.links, ref.base_iri());
  SimpleSampler sampler(&cand, &ref, &to_ref);
  const Term r_sub = Term::Iri("http://kb1.sofya.org/ontology/hasDirector");
  const Term r = Term::Iri("http://kb2.sofya.org/ontology/directedBy");
  for (auto _ : state) {
    auto evidence = sampler.CollectEvidence(r_sub, r);
    benchmark::DoNotOptimize(evidence);
  }
}
BENCHMARK(BM_SimpleSamplerEvidence);

void BM_FullAlignment(benchmark::State& state) {
  auto world = std::move(GenerateWorld(MoviesWorldSpec())).value();
  LocalEndpoint cand(world.kb1.get());
  LocalEndpoint ref(world.kb2.get());
  RelationAligner aligner(&cand, &ref, &world.links);
  const Term r = Term::Iri("http://kb2.sofya.org/ontology/directedBy");
  for (auto _ : state) {
    auto result = aligner.Align(r);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullAlignment);

}  // namespace
}  // namespace sofya

BENCHMARK_MAIN();
