// E2 — the threshold-selection protocol behind Table 1.
//
// The paper: "we have selected the thresholds τ that led to the highest
// average F1 score for both ways implications". This bench prints the full
// P/R/F1 curves over the τ grid for both measures and both directions, and
// marks the argmax the Table-1 run uses.

#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "core/sofya.h"

int main() {
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 0.15;
  std::printf("=== E2: threshold sweep (τ selection protocol; scale=%.2f) "
              "===\n",
              scale);

  auto world_or = sofya::GenerateWorld(sofya::YagoDbpediaSpec(2016, scale));
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  std::printf("%s\n\n", sofya::DescribeWorld(world).c_str());

  sofya::LocalEndpoint yago(world.kb1.get());
  sofya::LocalEndpoint dbpd(world.kb2.get());

  sofya::DirectionRunOptions options;
  options.aligner.threshold = 0.0;  // Accept-all; re-threshold offline.
  options.aligner.use_ubs = false;
  options.aligner.check_equivalence = false;

  auto run12 = sofya::RunDirection(&yago, &dbpd, world.links,
                                   world.truth.RelationsOf("dbpd"), options);
  auto run21 = sofya::RunDirection(&dbpd, &yago, world.links,
                                   world.truth.RelationsOf("yago"), options);
  if (!run12.ok() || !run21.ok()) {
    std::fprintf(stderr, "direction run failed\n");
    return 1;
  }

  for (auto measure :
       {sofya::ConfidenceMeasure::kPca, sofya::ConfidenceMeasure::kCwa}) {
    sofya::ScorePolicy policy;
    policy.measure = measure;
    sofya::SweepResult sweep =
        sofya::SweepThreshold(*run12, *run21, world.truth,
                              sofya::DefaultTauGrid(), policy);
    std::printf("--- %s ---\n", sofya::ConfidenceMeasureName(measure));
    sofya::TableWriter table({"tau", "P(y⊂d)", "R(y⊂d)", "F1(y⊂d)",
                              "P(d⊂y)", "R(d⊂y)", "F1(d⊂y)", "meanF1", ""});
    for (const auto& point : sweep.points) {
      table.AddRow({sofya::FormatDouble(point.tau, 2),
                    sofya::FormatDouble(point.dir1.precision(), 2),
                    sofya::FormatDouble(point.dir1.recall(), 2),
                    sofya::FormatDouble(point.dir1.f1(), 2),
                    sofya::FormatDouble(point.dir2.precision(), 2),
                    sofya::FormatDouble(point.dir2.recall(), 2),
                    sofya::FormatDouble(point.dir2.f1(), 2),
                    sofya::FormatDouble(point.mean_f1, 2),
                    point.tau == sweep.best_tau ? "<= τ*" : ""});
    }
    table.Print(std::cout);
    std::printf("selected τ* = %.2f (argmax mean F1; paper reports "
                "τ>0.3 for pcaconf, τ>0.1 for cwaconf on YAGO/DBpedia)\n\n",
                sweep.best_tau);
  }
  return 0;
}
