// E3 — sensitivity to the sample size.
//
// The paper evaluates at 10 subject samples; this bench sweeps the sample
// size for the pca/cwa baselines and UBS, showing where "very small
// samples" stop hurting (the paper's central efficiency claim) and how
// query cost grows.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/sofya.h"

int main() {
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 0.10;
  std::printf("=== E3: sample-size sweep (paper uses 10; scale=%.2f) ===\n\n",
              scale);

  auto world_or = sofya::GenerateWorld(sofya::YagoDbpediaSpec(2016, scale));
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();

  sofya::TableWriter table({"samples", "pca P", "pca F1", "cwa P", "cwa F1",
                            "UBS P", "UBS F1", "queries/relation"});

  for (size_t samples : {1u, 2u, 5u, 10u, 20u, 50u}) {
    sofya::LocalEndpoint yago(world.kb1.get());
    sofya::LocalEndpoint dbpd(world.kb2.get());

    // Baseline run (accept-all) for offline pca/cwa scoring.
    sofya::DirectionRunOptions base;
    base.aligner.threshold = 0.0;
    base.aligner.use_ubs = false;
    base.aligner.check_equivalence = false;
    base.aligner.sampler.sample_size = samples;
    // Tiny samples can't clear the default support gate; scale it down.
    const size_t min_support = samples >= 6 ? 3 : 1;

    auto run = sofya::RunDirection(&yago, &dbpd, world.links,
                                   world.truth.RelationsOf("dbpd"), base);
    if (!run.ok()) continue;

    sofya::ScorePolicy pca;
    pca.tau = 0.6;
    pca.min_support = min_support;
    sofya::ScorePolicy cwa = pca;
    cwa.measure = sofya::ConfidenceMeasure::kCwa;
    cwa.tau = 0.5;
    auto pca_pr = sofya::ScoreSubsumptions(*run, world.truth, pca);
    auto cwa_pr = sofya::ScoreSubsumptions(*run, world.truth, cwa);

    // UBS run at the same sample size.
    sofya::DirectionRunOptions ubs = base;
    ubs.aligner.threshold = 0.6;
    ubs.aligner.use_ubs = true;
    ubs.aligner.min_support = min_support;
    auto ubs_run = sofya::RunDirection(&yago, &dbpd, world.links,
                                       world.truth.RelationsOf("dbpd"), ubs);
    if (!ubs_run.ok()) continue;
    sofya::ScorePolicy ubs_policy = pca;
    ubs_policy.apply_ubs = true;
    auto ubs_pr = sofya::ScoreSubsumptions(*ubs_run, world.truth, ubs_policy);

    const double queries_per_relation =
        static_cast<double>(ubs_run->candidate_queries +
                            ubs_run->reference_queries) /
        static_cast<double>(ubs_run->attempted_heads.size());

    table.AddRow({std::to_string(samples),
                  sofya::FormatDouble(pca_pr.precision(), 2),
                  sofya::FormatDouble(pca_pr.f1(), 2),
                  sofya::FormatDouble(cwa_pr.precision(), 2),
                  sofya::FormatDouble(cwa_pr.f1(), 2),
                  sofya::FormatDouble(ubs_pr.precision(), 2),
                  sofya::FormatDouble(ubs_pr.f1(), 2),
                  sofya::FormatDouble(queries_per_relation, 1)});
  }

  table.Print(std::cout);
  std::printf("\n(direction: yago ⊂ dbpd; τ fixed at 0.6/0.5; support gate "
              "relaxed below 6 samples)\n");
  return 0;
}
