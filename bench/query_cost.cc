// E4 — the "few queries, no download" claim, quantified.
//
// The paper's motivation: aligning on full snapshots is impractical (YAGO
// alone ~100 GB); SOFYA aligns with a handful of endpoint queries. This
// bench reports queries / rows / bytes / simulated latency per aligned
// relation under a realistic throttled endpoint, against the
// download-everything baseline (shipping both datasets).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/sofya.h"

int main() {
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 0.10;
  std::printf("=== E4: query cost per alignment (scale=%.2f) ===\n\n", scale);

  auto world_or = sofya::GenerateWorld(sofya::YagoDbpediaSpec(2016, scale));
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  std::printf("%s\n\n", sofya::DescribeWorld(world).c_str());

  sofya::LocalEndpoint yago_local(world.kb1.get());
  sofya::LocalEndpoint dbpd_local(world.kb2.get());
  sofya::ThrottleOptions throttle;  // Public-endpoint latency model.
  throttle.base_latency_ms = 80.0;
  throttle.per_row_latency_ms = 0.05;
  throttle.max_rows_per_query = 10000;  // DBpedia-style cap.
  sofya::ThrottledEndpoint yago(&yago_local, throttle);
  sofya::ThrottledEndpoint dbpd(&dbpd_local, throttle);

  sofya::RelationAligner aligner(&yago, &dbpd, &world.links);

  sofya::TableWriter table({"relation", "candidates", "accepted", "queries",
                            "rows", "sim latency (s)"});
  uint64_t total_queries = 0, total_rows = 0;
  double total_latency = 0.0;
  size_t aligned = 0;

  // Align a representative slice: the first 25 reference relations.
  auto heads = world.truth.RelationsOf("dbpd");
  const size_t n = heads.size() < 25 ? heads.size() : 25;
  for (size_t i = 0; i < n; ++i) {
    auto result = aligner.Align(sofya::Term::Iri(heads[i]));
    if (!result.ok()) continue;
    ++aligned;
    total_queries += result->total_queries();
    total_rows += result->rows_shipped;
    total_latency += result->simulated_latency_ms;
    if (i < 8) {  // Print the head of the table only.
      const std::string local = heads[i].substr(heads[i].rfind('/') + 1);
      table.AddRow({local, std::to_string(result->verdicts.size()),
                    std::to_string(result->AcceptedSubsumptions().size()),
                    std::to_string(result->total_queries()),
                    std::to_string(result->rows_shipped),
                    sofya::FormatDouble(result->simulated_latency_ms / 1000.0,
                                        2)});
    }
  }
  table.Print(std::cout);

  const double avg_queries =
      static_cast<double>(total_queries) / static_cast<double>(aligned);
  const double avg_rows =
      static_cast<double>(total_rows) / static_cast<double>(aligned);
  std::printf("\nmean per aligned relation over %zu relations: %.1f queries, "
              "%.0f rows, %.1f s simulated latency\n",
              aligned, avg_queries, avg_rows, total_latency / 1000.0 /
                                                  static_cast<double>(aligned));

  const size_t dataset_rows = world.stats.kb1_facts + world.stats.kb2_facts;
  std::printf("download-everything baseline would ship %zu rows "
              "(%.0fx the per-alignment row cost) before any mining starts\n",
              dataset_rows,
              static_cast<double>(dataset_rows) / avg_rows);
  std::printf("(the real YAGO2+DBpedia would be billions of rows / ~100 GB "
              "on disk — the gap only widens with dataset size)\n");
  return 0;
}
