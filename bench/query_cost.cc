// E4 — the "few queries, no download" claim, quantified.
//
// The paper's motivation: aligning on full snapshots is impractical (YAGO
// alone ~100 GB); SOFYA aligns with a handful of endpoint queries. This
// bench reports:
//
//   1. queries / rows / bytes / simulated latency per aligned relation
//      under a realistic throttled endpoint, against the download-everything
//      baseline;
//   2. ASK / LIMIT-1 probe cost versus result cardinality — with the
//      streaming engine these terminate at the first solution, so the cost
//      is flat while a full SELECT scales linearly;
//   3. a repeated-alignment workload with and without CachingEndpoint —
//      cache hits replace server queries, so the cached run issues strictly
//      fewer;
//   4. join-order planning A/B — star, chain, and skewed-predicate query
//      shapes run against the same dataset under the statistics planner and
//      the legacy bound-position heuristic. Result sets must be identical
//      (the bench exits nonzero otherwise); wall time and triples scanned
//      quantify what cardinality-aware clause ordering buys.
//
// Pass --json (or set SOFYA_JSON=1) for a machine-readable summary (CI).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/sofya.h"

namespace {

struct AskPoint {
  size_t cardinality;
  uint64_t ask_scanned;
  uint64_t limit1_scanned;
  uint64_t select_scanned;
};

struct JoinShapeResult {
  std::string name;
  double legacy_ms = 0;
  double stats_ms = 0;
  uint64_t legacy_scanned = 0;
  uint64_t stats_scanned = 0;
  size_t rows = 0;
  bool identical = false;
  /// Non-empty when an evaluation failed outright — reported as a query
  /// error, never conflated with a planner result-set mismatch.
  std::string error;
  double speedup() const {
    return stats_ms > 0 ? legacy_ms / stats_ms : 0.0;
  }
};

/// Runs `query` under both planners against `kb`, timing `iterations`
/// evaluations each (after one untimed warm-up that also fills the plan
/// cache and the store's stats memos, so neither side pays one-time costs).
JoinShapeResult RunJoinShape(const std::string& name, sofya::KnowledgeBase* kb,
                             const sofya::SelectQuery& query,
                             int iterations) {
  JoinShapeResult out;
  out.name = name;

  auto run = [&](bool use_stats, double* ms, uint64_t* scanned,
                 std::vector<std::vector<sofya::TermId>>* rows) {
    sofya::LocalEndpointOptions options;
    options.estimate_bytes = false;
    options.engine.planner.use_statistics = use_stats;
    sofya::LocalEndpoint endpoint(kb, options);
    auto warm = endpoint.Select(query);
    if (!warm.ok()) {
      out.error = warm.status().ToString();
      return false;
    }
    *rows = warm->rows;
    std::sort(rows->begin(), rows->end());
    endpoint.ResetStats();
    sofya::WallTimer timer;
    for (int i = 0; i < iterations; ++i) {
      auto repeat = endpoint.Select(query);
      if (!repeat.ok()) {
        out.error = repeat.status().ToString();
        return false;
      }
    }
    *ms = timer.ElapsedMillis();
    *scanned = endpoint.stats().triples_scanned;
    return true;
  };

  std::vector<std::vector<sofya::TermId>> legacy_rows, stats_rows;
  const bool ok =
      run(false, &out.legacy_ms, &out.legacy_scanned, &legacy_rows) &&
      run(true, &out.stats_ms, &out.stats_scanned, &stats_rows);
  out.rows = stats_rows.size();
  out.identical = ok && legacy_rows == stats_rows;
  return out;
}

/// One planner arm of the v2 comparison: wall time, scan volume, adaptive
/// re-plan count, and the sorted result rows for parity checking.
struct PlannerArm {
  double ms = 0;
  uint64_t scanned = 0;
  uint64_t replans = 0;
  std::vector<std::vector<sofya::TermId>> rows;
  std::string error;
};

struct PlannerV2Result {
  std::string name;
  PlannerArm legacy, greedy, dp, adaptive;
  size_t rows = 0;
  bool identical = false;
  std::string error;
  double dp_vs_greedy() const {
    return dp.ms > 0 ? greedy.ms / dp.ms : 0.0;
  }
  double adaptive_speedup() const {
    return adaptive.ms > 0 ? dp.ms / adaptive.ms : 0.0;
  }
};

/// Runs `query` under four planner arms — legacy heuristic, v1 greedy, v2
/// Selinger DP, and DP + adaptive re-planning — timing `iterations`
/// evaluations each after an untimed warm-up (plan cache, stats memos,
/// histograms). Result-set parity across all four arms is the hard gate.
PlannerV2Result RunPlannerV2Shape(const std::string& name,
                                  sofya::KnowledgeBase* kb,
                                  const sofya::SelectQuery& query,
                                  int iterations) {
  PlannerV2Result out;
  out.name = name;

  auto run = [&](bool use_stats, bool use_dp, bool adaptive, PlannerArm* arm) {
    sofya::LocalEndpointOptions options;
    options.estimate_bytes = false;
    options.engine.planner.use_statistics = use_stats;
    options.engine.planner.use_dp = use_dp;
    options.engine.adaptive = adaptive;
    sofya::LocalEndpoint endpoint(kb, options);
    auto warm = endpoint.Select(query);
    if (!warm.ok()) {
      arm->error = warm.status().ToString();
      return false;
    }
    arm->rows = warm->rows;
    std::sort(arm->rows.begin(), arm->rows.end());
    endpoint.ResetStats();
    sofya::WallTimer timer;
    for (int i = 0; i < iterations; ++i) {
      auto repeat = endpoint.Select(query);
      if (!repeat.ok()) {
        arm->error = repeat.status().ToString();
        return false;
      }
    }
    arm->ms = timer.ElapsedMillis();
    arm->scanned = endpoint.stats().triples_scanned;
    arm->replans = endpoint.stats().replans;
    return true;
  };

  const bool ok = run(false, false, false, &out.legacy) &&
                  run(true, false, false, &out.greedy) &&
                  run(true, true, false, &out.dp) &&
                  run(true, true, true, &out.adaptive);
  for (const PlannerArm* arm :
       {&out.legacy, &out.greedy, &out.dp, &out.adaptive}) {
    if (!arm->error.empty()) out.error = arm->error;
  }
  out.rows = out.dp.rows.size();
  out.identical = ok && out.legacy.rows == out.greedy.rows &&
                  out.greedy.rows == out.dp.rows &&
                  out.dp.rows == out.adaptive.rows;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = std::getenv("SOFYA_JSON") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 0.10;

  if (!json) {
    std::printf("=== E4: query cost per alignment (scale=%.2f) ===\n\n",
                scale);
  }

  auto world_or = sofya::GenerateWorld(sofya::YagoDbpediaSpec(2016, scale));
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  if (!json) std::printf("%s\n\n", sofya::DescribeWorld(world).c_str());

  // ----------------------------------------------------------------------
  // Section 1: per-alignment cost under a throttled public-endpoint model.
  sofya::LocalEndpoint yago_local(world.kb1.get());
  sofya::LocalEndpoint dbpd_local(world.kb2.get());
  sofya::ThrottleOptions throttle;  // Public-endpoint latency model.
  throttle.base_latency_ms = 80.0;
  throttle.per_row_latency_ms = 0.05;
  throttle.max_rows_per_query = 10000;  // DBpedia-style cap.
  sofya::ThrottledEndpoint yago(&yago_local, throttle);
  sofya::ThrottledEndpoint dbpd(&dbpd_local, throttle);

  sofya::RelationAligner aligner(&yago, &dbpd, &world.links);

  sofya::TableWriter table({"relation", "candidates", "accepted", "queries",
                            "rows", "sim latency (s)"});
  uint64_t total_queries = 0, total_rows = 0;
  double total_latency = 0.0;
  size_t aligned = 0;

  // Align a representative slice: the first 25 reference relations.
  auto heads = world.truth.RelationsOf("dbpd");
  const size_t n = heads.size() < 25 ? heads.size() : 25;
  for (size_t i = 0; i < n; ++i) {
    auto result = aligner.Align(sofya::Term::Iri(heads[i]));
    if (!result.ok()) continue;
    ++aligned;
    total_queries += result->total_queries();
    total_rows += result->rows_shipped;
    total_latency += result->simulated_latency_ms;
    if (!json && i < 8) {  // Print the head of the table only.
      const std::string local = heads[i].substr(heads[i].rfind('/') + 1);
      table.AddRow({local, std::to_string(result->verdicts.size()),
                    std::to_string(result->AcceptedSubsumptions().size()),
                    std::to_string(result->total_queries()),
                    std::to_string(result->rows_shipped),
                    sofya::FormatDouble(result->simulated_latency_ms / 1000.0,
                                        2)});
    }
  }

  const double avg_queries =
      static_cast<double>(total_queries) / static_cast<double>(aligned);
  const double avg_rows =
      static_cast<double>(total_rows) / static_cast<double>(aligned);
  const size_t dataset_rows = world.stats.kb1_facts + world.stats.kb2_facts;

  if (!json) {
    table.Print(std::cout);
    std::printf(
        "\nmean per aligned relation over %zu relations: %.1f queries, "
        "%.0f rows, %.1f s simulated latency\n",
        aligned, avg_queries, avg_rows,
        total_latency / 1000.0 / static_cast<double>(aligned));
    std::printf(
        "download-everything baseline would ship %zu rows "
        "(%.0fx the per-alignment row cost) before any mining starts\n",
        dataset_rows, static_cast<double>(dataset_rows) / avg_rows);
    std::printf(
        "(the real YAGO2+DBpedia would be billions of rows / ~100 GB "
        "on disk — the gap only widens with dataset size)\n");
  }

  // ----------------------------------------------------------------------
  // Section 2: ASK / LIMIT-1 probes terminate at the first solution — their
  // cost must not scale with the number of matches.
  sofya::KnowledgeBase ask_kb("askbench", "http://ask.org/");
  const std::vector<size_t> cardinalities = {10, 100, 1000, 10000};
  for (size_t c : cardinalities) {
    const std::string pred = "p" + std::to_string(c);
    for (size_t i = 0; i < c; ++i) {
      ask_kb.AddFact("s" + std::to_string(i), pred, "o" + std::to_string(i));
    }
  }
  sofya::LocalEndpoint ask_ep(&ask_kb);
  std::vector<AskPoint> ask_points;
  for (size_t c : cardinalities) {
    const sofya::TermId p = ask_kb.dict().LookupIri(
        "http://ask.org/p" + std::to_string(c));
    AskPoint point;
    point.cardinality = c;
    ask_ep.ResetStats();
    (void)ask_ep.Ask(sofya::queries::FactsOfPredicate(p));
    point.ask_scanned = ask_ep.stats().triples_scanned;
    ask_ep.ResetStats();
    (void)ask_ep.Select(sofya::queries::FactsOfPredicate(p, /*limit=*/1));
    point.limit1_scanned = ask_ep.stats().triples_scanned;
    ask_ep.ResetStats();
    (void)ask_ep.Select(sofya::queries::FactsOfPredicate(p));
    point.select_scanned = ask_ep.stats().triples_scanned;
    ask_points.push_back(point);
  }

  if (!json) {
    std::printf("\n=== early termination: probe cost vs cardinality ===\n\n");
    sofya::TableWriter ask_table({"matches", "ASK scanned", "LIMIT-1 scanned",
                                  "full SELECT scanned"});
    for (const AskPoint& point : ask_points) {
      ask_table.AddRow({std::to_string(point.cardinality),
                        std::to_string(point.ask_scanned),
                        std::to_string(point.limit1_scanned),
                        std::to_string(point.select_scanned)});
    }
    ask_table.Print(std::cout);
    std::printf(
        "\nASK and LIMIT-1 probes stay O(first match) while the full SELECT "
        "scan grows with the data — the streaming pipeline at work.\n");
  }

  // ----------------------------------------------------------------------
  // Section 3: repeated alignments with and without a client-side cache.
  const size_t cache_slice = n < 10 ? n : 10;
  uint64_t baseline_queries = 0;
  {
    sofya::LocalEndpoint y(world.kb1.get());
    sofya::LocalEndpoint d(world.kb2.get());
    sofya::RelationAligner uncached(&y, &d, &world.links);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < cache_slice; ++i) {
        (void)uncached.Align(sofya::Term::Iri(heads[i]));
      }
    }
    baseline_queries = y.stats().queries + d.stats().queries;
  }
  uint64_t cached_server_queries = 0, cache_hits = 0;
  {
    sofya::LocalEndpoint y(world.kb1.get());
    sofya::LocalEndpoint d(world.kb2.get());
    sofya::CachingEndpoint yc(&y);
    sofya::CachingEndpoint dc(&d);
    sofya::RelationAligner cached(&yc, &dc, &world.links);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < cache_slice; ++i) {
        (void)cached.Align(sofya::Term::Iri(heads[i]));
      }
    }
    cached_server_queries = y.stats().queries + d.stats().queries;
    cache_hits = yc.hits() + dc.hits();
  }

  if (!json) {
    std::printf("\n=== cache effect on a repeated workload (%zu relations "
                "aligned twice) ===\n\n",
                cache_slice);
    std::printf("uncached server queries: %llu\n",
                static_cast<unsigned long long>(baseline_queries));
    std::printf("cached   server queries: %llu  (cache hits: %llu)\n",
                static_cast<unsigned long long>(cached_server_queries),
                static_cast<unsigned long long>(cache_hits));
    std::printf("the cache answers %.0f%% of requests client-side; repeated "
                "and overlapping evidence probes never reach the endpoint\n",
                100.0 * static_cast<double>(cache_hits) /
                    static_cast<double>(cache_hits + cached_server_queries));
  }

  // ----------------------------------------------------------------------
  // Section 4: join-order planning — statistics planner vs the legacy
  // bound-position heuristic on three canonical shapes. Every query lists
  // its clauses in the adversarial (big-first) order, which is exactly the
  // order the legacy heuristic keeps and the statistics planner repairs.
  sofya::KnowledgeBase join_kb("joinbench", "http://join.org/");
  {
    // Skewed predicates: 100k-fact "hot" vs 50-fact "cold" over overlapping
    // subjects — the PARIS-style probe shape where ordering matters most.
    for (int i = 0; i < 100000; ++i) {
      join_kb.AddFact("hs" + std::to_string(i), "hot",
                      "hv" + std::to_string(i % 997));
    }
    for (int i = 0; i < 50; ++i) {
      join_kb.AddFact("hs" + std::to_string(i * 20), "cold",
                      "cv" + std::to_string(i));
    }
    // Star: one subject variable, three predicates of shrinking size.
    for (int i = 0; i < 20000; ++i) {
      join_kb.AddFact("ss" + std::to_string(i % 10000), "pa",
                      "av" + std::to_string(i));
    }
    for (int i = 0; i < 2000; ++i) {
      join_kb.AddFact("ss" + std::to_string(i % 1000), "pb",
                      "bv" + std::to_string(i));
    }
    for (int i = 0; i < 100; ++i) {
      join_kb.AddFact("ss" + std::to_string(i % 50), "pc",
                      "cv" + std::to_string(i));
    }
    // Chain: x -p1-> y -p2-> z -p3-> w with shrinking cardinalities, so the
    // cheap end is the *last* clause and the planner must walk backward.
    for (int i = 0; i < 60000; ++i) {
      join_kb.AddFact("c1_" + std::to_string(i), "p1",
                      "c2_" + std::to_string(i % 6000));
    }
    for (int i = 0; i < 6000; ++i) {
      join_kb.AddFact("c2_" + std::to_string(i), "p2",
                      "c3_" + std::to_string(i % 600));
    }
    for (int i = 0; i < 120; ++i) {
      join_kb.AddFact("c3_" + std::to_string(i), "p3",
                      "c4_" + std::to_string(i));
    }
  }
  auto pred = [&](const char* local) {
    return join_kb.dict().LookupIri("http://join.org/" + std::string(local));
  };

  std::vector<JoinShapeResult> join_results;
  {
    sofya::SelectQuery q;  // ?x hot ?y . ?x cold ?z   (hot listed first)
    const sofya::VarId x = q.NewVar("x");
    const sofya::VarId y = q.NewVar("y");
    const sofya::VarId z = q.NewVar("z");
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("hot")),
            sofya::NodeRef::Variable(y));
    q.Where(sofya::NodeRef::Variable(x),
            sofya::NodeRef::Constant(pred("cold")),
            sofya::NodeRef::Variable(z));
    join_results.push_back(RunJoinShape("skewed", &join_kb, q, 20));
  }
  {
    sofya::SelectQuery q;  // ?x pa ?a . ?x pb ?b . ?x pc ?c  (big first)
    const sofya::VarId x = q.NewVar("x");
    const sofya::VarId a = q.NewVar("a");
    const sofya::VarId b = q.NewVar("b");
    const sofya::VarId c = q.NewVar("c");
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("pa")),
            sofya::NodeRef::Variable(a));
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("pb")),
            sofya::NodeRef::Variable(b));
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("pc")),
            sofya::NodeRef::Variable(c));
    join_results.push_back(RunJoinShape("star", &join_kb, q, 20));
  }
  {
    sofya::SelectQuery q;  // ?x p1 ?y . ?y p2 ?z . ?z p3 ?w  (big first)
    const sofya::VarId x = q.NewVar("x");
    const sofya::VarId y = q.NewVar("y");
    const sofya::VarId z = q.NewVar("z");
    const sofya::VarId w = q.NewVar("w");
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("p1")),
            sofya::NodeRef::Variable(y));
    q.Where(sofya::NodeRef::Variable(y), sofya::NodeRef::Constant(pred("p2")),
            sofya::NodeRef::Variable(z));
    q.Where(sofya::NodeRef::Variable(z), sofya::NodeRef::Constant(pred("p3")),
            sofya::NodeRef::Variable(w));
    join_results.push_back(RunJoinShape("chain", &join_kb, q, 20));
  }

  bool join_identical = true;
  for (const JoinShapeResult& r : join_results) {
    if (!r.identical) join_identical = false;
  }

  if (!json) {
    std::printf("\n=== join-order planning: statistics vs legacy heuristic "
                "===\n\n");
    sofya::TableWriter join_table({"shape", "legacy ms", "stats ms",
                                   "speedup", "legacy scanned",
                                   "stats scanned", "rows"});
    for (const JoinShapeResult& r : join_results) {
      join_table.AddRow({r.name, sofya::FormatDouble(r.legacy_ms, 1),
                         sofya::FormatDouble(r.stats_ms, 1),
                         sofya::FormatDouble(r.speedup(), 1) + "x",
                         std::to_string(r.legacy_scanned),
                         std::to_string(r.stats_scanned),
                         std::to_string(r.rows)});
    }
    join_table.Print(std::cout);
    std::printf(
        "\nidentical result sets: %s — the planner changes enumeration "
        "order and cost, never answers\n",
        join_identical ? "yes" : "NO (BUG)");
  }

  // ----------------------------------------------------------------------
  // Section 5: planner v2 — Selinger DP vs greedy vs legacy on the three
  // canonical shapes, plus a misestimate-adversarial shape built so the
  // equi-depth histograms *cannot* see the skew (hub fan-outs below bucket
  // depth) and the initial DP plan is provably wrong: only adaptive
  // execution escapes, by observing the blow-up mid-query and re-planning.
  sofya::KnowledgeBase adv_kb("advbench", "http://adv.org/");
  {
    // pfan: 50k subjects with fan-out 2 plus 4 "hub" subjects with fan-out
    // 3000 — below the 32-bucket equi-depth resolution (~3.5k facts per
    // bucket). The hubs are *interspersed* across the dictionary-id range
    // (interned mid-stream), so each hub run shares its bucket with ~1k
    // ordinary subjects and the frequency-weighted fan-out estimate stays
    // near the uniform value: no static plan can see the skew, and the
    // planner walks straight into the hubs.
    for (int i = 0; i < 50000; ++i) {
      const std::string s = "fs" + std::to_string(i);
      adv_kb.AddFact(s, "pfan", "no" + std::to_string(2 * i));
      adv_kb.AddFact(s, "pfan", "no" + std::to_string(2 * i + 1));
      if (i % 12500 == 6250) {
        const int h = i / 12500;
        const std::string hub = "hub" + std::to_string(h);
        for (int j = 0; j < 3000; ++j) {
          adv_kb.AddFact(hub, "pfan",
                         "ho" + std::to_string(h) + "_" + std::to_string(j));
        }
      }
    }
    // psel selects exactly the hubs; pobjsel selects 50 of hub0's objects.
    for (int h = 0; h < 4; ++h) {
      adv_kb.AddFact("hub" + std::to_string(h), "psel", "sel");
    }
    for (int k = 0; k < 50; ++k) {
      adv_kb.AddFact("pw" + std::to_string(k), "pobjsel",
                     "ho0_" + std::to_string(k));
    }
  }
  auto adv_pred = [&](const char* local) {
    return adv_kb.dict().LookupIri("http://adv.org/" + std::string(local));
  };

  std::vector<PlannerV2Result> v2_results;
  {
    sofya::SelectQuery q;  // ?x hot ?y . ?x cold ?z   (hot listed first)
    const sofya::VarId x = q.NewVar("x");
    const sofya::VarId y = q.NewVar("y");
    const sofya::VarId z = q.NewVar("z");
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("hot")),
            sofya::NodeRef::Variable(y));
    q.Where(sofya::NodeRef::Variable(x),
            sofya::NodeRef::Constant(pred("cold")),
            sofya::NodeRef::Variable(z));
    v2_results.push_back(RunPlannerV2Shape("skewed", &join_kb, q, 20));
  }
  {
    sofya::SelectQuery q;  // ?x pa ?a . ?x pb ?b . ?x pc ?c  (big first)
    const sofya::VarId x = q.NewVar("x");
    const sofya::VarId a = q.NewVar("a");
    const sofya::VarId b = q.NewVar("b");
    const sofya::VarId c = q.NewVar("c");
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("pa")),
            sofya::NodeRef::Variable(a));
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("pb")),
            sofya::NodeRef::Variable(b));
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("pc")),
            sofya::NodeRef::Variable(c));
    v2_results.push_back(RunPlannerV2Shape("star", &join_kb, q, 20));
  }
  {
    sofya::SelectQuery q;  // ?x p1 ?y . ?y p2 ?z . ?z p3 ?w  (big first)
    const sofya::VarId x = q.NewVar("x");
    const sofya::VarId y = q.NewVar("y");
    const sofya::VarId z = q.NewVar("z");
    const sofya::VarId w = q.NewVar("w");
    q.Where(sofya::NodeRef::Variable(x), sofya::NodeRef::Constant(pred("p1")),
            sofya::NodeRef::Variable(y));
    q.Where(sofya::NodeRef::Variable(y), sofya::NodeRef::Constant(pred("p2")),
            sofya::NodeRef::Variable(z));
    q.Where(sofya::NodeRef::Variable(z), sofya::NodeRef::Constant(pred("p3")),
            sofya::NodeRef::Variable(w));
    v2_results.push_back(RunPlannerV2Shape("chain", &join_kb, q, 20));
  }
  {
    sofya::SelectQuery q;  // ?h psel ?m . ?h pfan ?v . ?w pobjsel ?v
    const sofya::VarId h = q.NewVar("h");
    const sofya::VarId m = q.NewVar("m");
    const sofya::VarId v = q.NewVar("v");
    const sofya::VarId w = q.NewVar("w");
    q.Where(sofya::NodeRef::Variable(h),
            sofya::NodeRef::Constant(adv_pred("psel")),
            sofya::NodeRef::Variable(m));
    q.Where(sofya::NodeRef::Variable(h),
            sofya::NodeRef::Constant(adv_pred("pfan")),
            sofya::NodeRef::Variable(v));
    q.Where(sofya::NodeRef::Variable(w),
            sofya::NodeRef::Constant(adv_pred("pobjsel")),
            sofya::NodeRef::Variable(v));
    v2_results.push_back(RunPlannerV2Shape("adversarial", &adv_kb, q, 20));
  }

  bool v2_identical = true;
  for (const PlannerV2Result& r : v2_results) {
    if (!r.identical) v2_identical = false;
  }

  if (!json) {
    std::printf("\n=== planner v2: Selinger DP vs greedy vs legacy "
                "(+ adaptive) ===\n\n");
    sofya::TableWriter v2_table({"shape", "legacy ms", "greedy ms", "dp ms",
                                 "adaptive ms", "dp replans", "rows"});
    for (const PlannerV2Result& r : v2_results) {
      v2_table.AddRow({r.name, sofya::FormatDouble(r.legacy.ms, 1),
                       sofya::FormatDouble(r.greedy.ms, 1),
                       sofya::FormatDouble(r.dp.ms, 1),
                       sofya::FormatDouble(r.adaptive.ms, 1),
                       std::to_string(r.adaptive.replans),
                       std::to_string(r.rows)});
    }
    v2_table.Print(std::cout);
    std::printf(
        "\nidentical result sets across all four arms: %s\n"
        "adversarial shape: the histograms cannot see the hub skew, so "
        "every static plan walks into it; adaptive execution re-plans "
        "after ~1k rows and finishes %.1fx faster\n",
        v2_identical ? "yes" : "NO (BUG)",
        v2_results.back().adaptive_speedup());
  }

  if (json) {
    std::printf("{");
    std::printf("\"scale\": %.3f, \"aligned\": %zu, ", scale, aligned);
    std::printf("\"mean_queries\": %.2f, \"mean_rows\": %.1f, ", avg_queries,
                avg_rows);
    std::printf("\"dataset_rows\": %zu, ", dataset_rows);
    std::printf("\"ask_scaling\": [");
    for (size_t i = 0; i < ask_points.size(); ++i) {
      std::printf("%s{\"matches\": %zu, \"ask_scanned\": %llu, "
                  "\"limit1_scanned\": %llu, \"select_scanned\": %llu}",
                  i == 0 ? "" : ", ", ask_points[i].cardinality,
                  static_cast<unsigned long long>(ask_points[i].ask_scanned),
                  static_cast<unsigned long long>(
                      ask_points[i].limit1_scanned),
                  static_cast<unsigned long long>(
                      ask_points[i].select_scanned));
    }
    std::printf("], ");
    std::printf("\"cache\": {\"baseline_queries\": %llu, "
                "\"cached_queries\": %llu, \"cache_hits\": %llu}, ",
                static_cast<unsigned long long>(baseline_queries),
                static_cast<unsigned long long>(cached_server_queries),
                static_cast<unsigned long long>(cache_hits));
    std::printf("\"join_order\": [");
    for (size_t i = 0; i < join_results.size(); ++i) {
      const JoinShapeResult& r = join_results[i];
      // Escape the (plain-ASCII status text) error so a query failure is
      // distinguishable from a parity mismatch in the artifact too.
      std::string escaped_error;
      for (char c : r.error) {
        if (c == '"' || c == '\\') escaped_error += '\\';
        escaped_error += (c == '\n') ? ' ' : c;
      }
      std::printf(
          "%s{\"shape\": \"%s\", \"legacy_ms\": %.3f, \"stats_ms\": %.3f, "
          "\"speedup\": %.2f, \"legacy_scanned\": %llu, "
          "\"stats_scanned\": %llu, \"rows\": %zu, \"identical\": %s, "
          "\"error\": \"%s\"}",
          i == 0 ? "" : ", ", r.name.c_str(), r.legacy_ms, r.stats_ms,
          r.speedup(), static_cast<unsigned long long>(r.legacy_scanned),
          static_cast<unsigned long long>(r.stats_scanned), r.rows,
          r.identical ? "true" : "false", escaped_error.c_str());
    }
    std::printf("], ");
    std::printf("\"planner_v2\": [");
    for (size_t i = 0; i < v2_results.size(); ++i) {
      const PlannerV2Result& r = v2_results[i];
      std::string escaped_error;
      for (char c : r.error) {
        if (c == '"' || c == '\\') escaped_error += '\\';
        escaped_error += (c == '\n') ? ' ' : c;
      }
      std::printf(
          "%s{\"shape\": \"%s\", \"legacy_ms\": %.3f, \"greedy_ms\": %.3f, "
          "\"dp_ms\": %.3f, \"adaptive_ms\": %.3f, "
          "\"legacy_scanned\": %llu, \"greedy_scanned\": %llu, "
          "\"dp_scanned\": %llu, \"adaptive_scanned\": %llu, "
          "\"dp_vs_greedy\": %.2f, \"adaptive_speedup\": %.2f, "
          "\"adaptive_replans\": %llu, \"rows\": %zu, \"identical\": %s, "
          "\"error\": \"%s\"}",
          i == 0 ? "" : ", ", r.name.c_str(), r.legacy.ms, r.greedy.ms,
          r.dp.ms, r.adaptive.ms,
          static_cast<unsigned long long>(r.legacy.scanned),
          static_cast<unsigned long long>(r.greedy.scanned),
          static_cast<unsigned long long>(r.dp.scanned),
          static_cast<unsigned long long>(r.adaptive.scanned),
          r.dp_vs_greedy(), r.adaptive_speedup(),
          static_cast<unsigned long long>(r.adaptive.replans), r.rows,
          r.identical ? "true" : "false", escaped_error.c_str());
    }
    std::printf("]");
    std::printf("}\n");
  }
  // A planner that changes answers is a correctness bug, not a perf story:
  // fail the bench (and the CI smoke run) loudly — but report an outright
  // query failure as what it is, never as a parity mismatch.
  if (!join_identical) {
    for (const JoinShapeResult& r : join_results) {
      if (!r.error.empty()) {
        std::fprintf(stderr, "FATAL: join-order shape '%s' failed: %s\n",
                     r.name.c_str(), r.error.c_str());
      } else if (!r.identical) {
        std::fprintf(stderr,
                     "FATAL: stats and legacy planners disagree on result "
                     "sets for shape '%s'\n",
                     r.name.c_str());
      }
    }
    return 1;
  }
  if (!v2_identical) {
    for (const PlannerV2Result& r : v2_results) {
      if (!r.error.empty()) {
        std::fprintf(stderr, "FATAL: planner_v2 shape '%s' failed: %s\n",
                     r.name.c_str(), r.error.c_str());
      } else if (!r.identical) {
        std::fprintf(stderr,
                     "FATAL: planner arms disagree on result sets for "
                     "planner_v2 shape '%s'\n",
                     r.name.c_str());
      }
    }
    return 1;
  }
  return 0;
}
