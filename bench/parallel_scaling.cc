// E6 — parallel multi-relation alignment: wall-clock vs worker threads,
// plus the skewed-schema scheduler comparison.
//
// Scenario 1 (thread scaling): whole-schema alignment of the synthetic
// YAGO/DBpedia world through one shared endpoint stack, at several thread
// counts, on two stacks:
//
//   remote   — ThrottledEndpoint with sleep_for_latency: every request pays
//              its modeled wire time for real. This is the paper's actual
//              deployment regime (public SPARQL endpoints are latency-
//              bound, not CPU-bound), and it is where parallelism pays:
//              N workers overlap N waits.
//   local    — bare in-process LocalEndpoints (CPU-bound): the upper bound
//              on compute-side scaling for the host's core count.
//
// Scenario 2 (skewed schema): one reference relation with ~10× the
// candidate fan-out of its siblings. The fixed per-relation scheduler
// (AlignSchedule::kRelation) serializes the tail behind the giant
// relation's single worker; the phase-decomposed work-stealing scheduler
// (kPhase, the default) spreads the giant's per-candidate sampling and
// reverse-check subtasks across every idle worker. Target: >= 1.5x
// wall-clock at 4 threads, bit-identical verdicts.
//
// Determinism is asserted, not assumed: every thread count and both
// schedulers must produce identical verdicts.
//
// Pass --json (or set SOFYA_JSON=1) for a machine-readable summary (CI
// uploads it as the perf-trajectory artifact).
//
// Environment knobs:
//   SOFYA_PS_SCALE     world scale (default 0.05)
//   SOFYA_PS_SEED      world seed (default 2016)
//   SOFYA_PS_RELATIONS max reference relations to align (default 16)
//   SOFYA_PS_LATENCY   modeled per-query latency in ms (default 2.0)
//   SOFYA_PS_THREADS   comma list of thread counts (default "1,2,4,8")

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/sofya.h"

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : static_cast<uint64_t>(std::atoll(value));
}

std::vector<size_t> EnvSizeList(const char* name,
                                std::vector<size_t> fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  std::vector<size_t> out;
  std::string s(value);
  size_t start = 0;
  while (start < s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    out.push_back(static_cast<size_t>(std::atoll(s.substr(start).c_str())));
    if (comma == std::string::npos) break;
    start = end + 1;
  }
  return out.empty() ? fallback : out;
}

struct RunPoint {
  size_t threads = 1;
  double wall_ms = 0.0;
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  size_t accepted = 0;
  size_t subtasks = 0;
};

/// Verdict fingerprint of a whole fleet run (bit-identity checks).
std::string FleetFingerprint(const sofya::AlignManyResult& fleet) {
  std::string fp;
  for (const auto& result : fleet.results) {
    fp += result.reference_relation.lexical();
    for (const auto& v : result.verdicts) {
      fp += sofya::StrFormat(
          "|%s;%.9f;%zu;%d;%d", v.relation.lexical().c_str(), v.rule.pca_conf,
          v.rule.support, static_cast<int>(v.accepted),
          static_cast<int>(v.equivalence));
    }
    fp += "#";
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = EnvDouble("SOFYA_PS_SCALE", 0.05);
  const uint64_t seed = EnvU64("SOFYA_PS_SEED", 2016);
  const size_t max_relations =
      static_cast<size_t>(EnvU64("SOFYA_PS_RELATIONS", 16));
  const double latency_ms = EnvDouble("SOFYA_PS_LATENCY", 2.0);
  const std::vector<size_t> thread_counts =
      EnvSizeList("SOFYA_PS_THREADS", {1, 2, 4, 8});
  bool json = std::getenv("SOFYA_JSON") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  auto world_or = sofya::GenerateWorld(sofya::YagoDbpediaSpec(seed, scale));
  if (!world_or.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  world.kb1->store().EnsureIndexed();
  world.kb2->store().EnsureIndexed();

  std::vector<sofya::Term> relations;
  for (const std::string& iri : world.truth.RelationsOf("dbpd")) {
    relations.push_back(sofya::Term::Iri(iri));
    if (relations.size() >= max_relations) break;
  }

  if (!json) {
    std::printf(
        "=== E6: parallel multi-relation alignment (scale=%.2f, %zu "
        "relations, %.1f ms modeled latency) ===\n\n",
        scale, relations.size(), latency_ms);
  }

  // One measurement = fresh stack (cold caches) + one AlignMany. The
  // remote stack sleeps its modeled latency for real, so wall-clock shows
  // exactly what a user of a public endpoint would see.
  auto run = [&](size_t threads, bool remote) {
    sofya::LocalEndpoint cand_local(world.kb1.get());
    sofya::LocalEndpoint ref_local(world.kb2.get());
    sofya::ThrottleOptions throttle;
    throttle.base_latency_ms = latency_ms;
    throttle.per_row_latency_ms = 0.0;
    throttle.jitter_ms = 0.0;
    throttle.sleep_for_latency = true;
    sofya::ThrottledEndpoint cand_remote(&cand_local, throttle);
    sofya::ThrottledEndpoint ref_remote(&ref_local, throttle);
    sofya::CachingEndpoint cand(remote
                                    ? static_cast<sofya::Endpoint*>(&cand_remote)
                                    : &cand_local);
    sofya::CachingEndpoint ref(remote
                                   ? static_cast<sofya::Endpoint*>(&ref_remote)
                                   : &ref_local);
    sofya::RelationAligner aligner(&cand, &ref, &world.links);

    RunPoint point;
    point.threads = threads;
    auto fleet = aligner.AlignMany(relations, threads);
    if (!fleet.ok()) {
      std::fprintf(stderr, "AlignMany failed: %s\n",
                   fleet.status().ToString().c_str());
      std::exit(1);
    }
    point.wall_ms = fleet->wall_ms;
    point.queries = fleet->total_queries();
    point.cache_hits = fleet->candidate_stats.cache_hits +
                       fleet->reference_stats.cache_hits;
    point.subtasks = fleet->subtasks_scheduled;
    for (const auto& result : fleet->results) {
      point.accepted += result.AcceptedSubsumptions().size();
    }
    return point;
  };

  struct StackSummary {
    std::string name;
    std::vector<RunPoint> points;
    bool deterministic = true;
  };
  std::vector<StackSummary> summaries;

  for (const bool remote : {true, false}) {
    StackSummary summary;
    summary.name = remote ? "remote" : "local";
    if (!json) {
      std::printf("--- %s stack ---\n",
                  remote ? "remote (real latency, throttled)"
                         : "local (CPU-bound)");
    }
    sofya::TableWriter table(
        {"threads", "wall ms", "speedup", "queries", "cache hits",
         "accepted"});
    double baseline_ms = 0.0;
    size_t baseline_accepted = 0;
    for (size_t threads : thread_counts) {
      const RunPoint point = run(threads, remote);
      if (threads == thread_counts.front()) {
        baseline_ms = point.wall_ms;
        baseline_accepted = point.accepted;
      }
      if (point.accepted != baseline_accepted) summary.deterministic = false;
      summary.points.push_back(point);
      char wall[32], speedup[32];
      std::snprintf(wall, sizeof(wall), "%.0f", point.wall_ms);
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    point.wall_ms > 0 ? baseline_ms / point.wall_ms : 0.0);
      table.AddRow({std::to_string(point.threads), wall, speedup,
                    std::to_string(point.queries),
                    std::to_string(point.cache_hits),
                    std::to_string(point.accepted)});
    }
    if (!json) {
      std::printf("%s", table.ToAligned().c_str());
      std::printf("verdicts identical across thread counts: %s\n\n",
                  summary.deterministic ? "yes"
                                        : "NO — DETERMINISM VIOLATION");
    }
    if (!summary.deterministic) return 1;
    summaries.push_back(std::move(summary));
  }

  // ------------------------------------------------------------------
  // Scenario 2: skewed schema. One kb2 union relation with 16 kb1 sibling
  // candidates (the giant — every candidate is a sampling subtask and, when
  // accepted, a reverse-check subtask) next to 6 ordinary one-candidate
  // relations. UBS is off here on purpose: its probe wave is sequential per
  // relation by design (settle checks are order-dependent), so leaving it
  // on would measure UBS, not the scheduler.
  sofya::PairedKbOptions skew_options;
  skew_options.seed = seed + 1;
  skew_options.num_entities = 4000;
  skew_options.shared_concepts = 6;
  skew_options.literal_fraction = 0.0;
  skew_options.sibling_groups = 1;
  skew_options.siblings_per_group = 16;
  skew_options.sibling_shared_mix = 0.10;
  skew_options.overlap_traps = 0;
  skew_options.kb1_private = 0;
  skew_options.facts_per_shared_concept = 100;
  skew_options.facts_per_sibling_concept = 300;
  auto skew_world_or =
      sofya::GenerateWorld(sofya::PairedKbSpec(skew_options));
  if (!skew_world_or.ok()) {
    std::fprintf(stderr, "skew world generation failed: %s\n",
                 skew_world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld skew_world = std::move(skew_world_or).value();
  skew_world.kb1->store().EnsureIndexed();
  skew_world.kb2->store().EnsureIndexed();
  std::vector<sofya::Term> skew_relations;
  for (const std::string& iri : skew_world.truth.RelationsOf("dbpd")) {
    skew_relations.push_back(sofya::Term::Iri(iri));
  }

  sofya::AlignerOptions skew_aligner;
  skew_aligner.finder.max_candidates = 20;
  skew_aligner.use_ubs = false;
  skew_aligner.check_equivalence = true;

  auto run_skew = [&](size_t threads, sofya::AlignSchedule schedule,
                      std::string* fingerprint) {
    sofya::LocalEndpoint cand_local(skew_world.kb1.get());
    sofya::LocalEndpoint ref_local(skew_world.kb2.get());
    sofya::ThrottleOptions throttle;
    throttle.base_latency_ms = latency_ms;
    throttle.per_row_latency_ms = 0.0;
    throttle.jitter_ms = 0.0;
    throttle.sleep_for_latency = true;
    sofya::ThrottledEndpoint cand_remote(&cand_local, throttle);
    sofya::ThrottledEndpoint ref_remote(&ref_local, throttle);
    sofya::CachingEndpoint cand(&cand_remote);
    sofya::CachingEndpoint ref(&ref_remote);
    sofya::RelationAligner aligner(&cand, &ref, &skew_world.links,
                                   skew_aligner);
    sofya::AlignManyOptions options;
    options.num_threads = threads;
    options.schedule = schedule;
    auto fleet = aligner.AlignMany(skew_relations, options);
    if (!fleet.ok()) {
      std::fprintf(stderr, "skew AlignMany failed: %s\n",
                   fleet.status().ToString().c_str());
      std::exit(1);
    }
    *fingerprint = FleetFingerprint(*fleet);
    RunPoint point;
    point.threads = threads;
    point.wall_ms = fleet->wall_ms;
    point.queries = fleet->total_queries();
    point.subtasks = fleet->subtasks_scheduled;
    return point;
  };

  std::string fp_seq, fp_relation, fp_phase;
  const RunPoint skew_seq =
      run_skew(1, sofya::AlignSchedule::kPhase, &fp_seq);
  const RunPoint skew_relation =
      run_skew(4, sofya::AlignSchedule::kRelation, &fp_relation);
  const RunPoint skew_phase =
      run_skew(4, sofya::AlignSchedule::kPhase, &fp_phase);
  const bool skew_deterministic =
      fp_seq == fp_relation && fp_seq == fp_phase;
  const double skew_speedup = skew_phase.wall_ms > 0
                                  ? skew_relation.wall_ms / skew_phase.wall_ms
                                  : 0.0;

  if (!json) {
    std::printf(
        "--- skewed schema (1 relation with 16 candidates vs 6 with 1) "
        "---\n");
    sofya::TableWriter table(
        {"scheduler", "threads", "wall ms", "queries", "subtasks"});
    auto row = [&](const char* name, const RunPoint& p) {
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.0f", p.wall_ms);
      table.AddRow({name, std::to_string(p.threads), wall,
                    std::to_string(p.queries), std::to_string(p.subtasks)});
    };
    row("sequential", skew_seq);
    row("relation", skew_relation);
    row("phase", skew_phase);
    std::printf("%s", table.ToAligned().c_str());
    std::printf(
        "phase vs relation speedup at 4 threads: %.2fx (target >= 1.50x)\n",
        skew_speedup);
    std::printf("verdicts identical across schedulers: %s\n\n",
                skew_deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
    std::printf(
        "note: the remote stack is the paper's regime — alignment cost is "
        "dominated\nby endpoint round trips, so N workers overlap N waits "
        "and speedup tracks N\nuntil the shared cache/budget serializes. "
        "On the skewed schema the phase\nscheduler spreads the giant "
        "relation's subtasks across idle workers; the\nfixed per-relation "
        "fan-out leaves them serialized on one. (This machine:\n%u "
        "hardware threads.)\n",
        std::thread::hardware_concurrency());
  }
  if (!skew_deterministic) return 1;

  if (json) {
    std::printf("{");
    std::printf("\"scale\": %.3f, \"relations\": %zu, \"latency_ms\": %.2f, ",
                scale, relations.size(), latency_ms);
    for (const StackSummary& summary : summaries) {
      std::printf("\"%s\": [", summary.name.c_str());
      for (size_t i = 0; i < summary.points.size(); ++i) {
        const RunPoint& p = summary.points[i];
        std::printf("%s{\"threads\": %zu, \"wall_ms\": %.1f, "
                    "\"queries\": %llu, \"cache_hits\": %llu, "
                    "\"accepted\": %zu}",
                    i == 0 ? "" : ", ", p.threads, p.wall_ms,
                    static_cast<unsigned long long>(p.queries),
                    static_cast<unsigned long long>(p.cache_hits),
                    p.accepted);
      }
      std::printf("], ");
    }
    std::printf("\"skew\": {");
    auto skew_json = [](const char* name, const RunPoint& p, bool last) {
      std::printf("\"%s\": {\"threads\": %zu, \"wall_ms\": %.1f, "
                  "\"queries\": %llu, \"subtasks\": %zu}%s",
                  name, p.threads, p.wall_ms,
                  static_cast<unsigned long long>(p.queries), p.subtasks,
                  last ? "" : ", ");
    };
    skew_json("sequential", skew_seq, false);
    skew_json("relation", skew_relation, false);
    skew_json("phase", skew_phase, false);
    std::printf("\"phase_vs_relation_speedup\": %.3f, ", skew_speedup);
    std::printf("\"deterministic\": %s}", skew_deterministic ? "true"
                                                             : "false");
    std::printf("}\n");
  }
  return 0;
}
