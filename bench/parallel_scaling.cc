// E6 — parallel multi-relation alignment: wall-clock vs worker threads.
//
// The scenario is whole-schema alignment (the regime PARIS targets at
// schema level): every reference relation of the synthetic YAGO/DBpedia
// world is aligned through one shared endpoint stack. Head relations are
// independent, so AlignMany fans them out across a thread pool.
//
// Two stacks are measured:
//
//   remote   — ThrottledEndpoint with sleep_for_latency: every request pays
//              its modeled wire time for real. This is the paper's actual
//              deployment regime (public SPARQL endpoints are latency-
//              bound, not CPU-bound), and it is where parallelism pays:
//              N workers overlap N waits.
//   local    — bare in-process LocalEndpoints (CPU-bound): the upper bound
//              on compute-side scaling for the host's core count.
//
// Determinism is asserted, not assumed: every thread count must produce
// the same accepted-subsumption count as the sequential run.
//
// Environment knobs:
//   SOFYA_PS_SCALE     world scale (default 0.05)
//   SOFYA_PS_SEED      world seed (default 2016)
//   SOFYA_PS_RELATIONS max reference relations to align (default 16)
//   SOFYA_PS_LATENCY   modeled per-query latency in ms (default 2.0)
//   SOFYA_PS_THREADS   comma list of thread counts (default "1,2,4,8")

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/sofya.h"

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : static_cast<uint64_t>(std::atoll(value));
}

std::vector<size_t> EnvSizeList(const char* name,
                                std::vector<size_t> fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  std::vector<size_t> out;
  std::string s(value);
  size_t start = 0;
  while (start < s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    out.push_back(static_cast<size_t>(std::atoll(s.substr(start).c_str())));
    if (comma == std::string::npos) break;
    start = end + 1;
  }
  return out.empty() ? fallback : out;
}

struct RunPoint {
  size_t threads = 1;
  double wall_ms = 0.0;
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  size_t accepted = 0;
};

}  // namespace

int main() {
  const double scale = EnvDouble("SOFYA_PS_SCALE", 0.05);
  const uint64_t seed = EnvU64("SOFYA_PS_SEED", 2016);
  const size_t max_relations =
      static_cast<size_t>(EnvU64("SOFYA_PS_RELATIONS", 16));
  const double latency_ms = EnvDouble("SOFYA_PS_LATENCY", 2.0);
  const std::vector<size_t> thread_counts =
      EnvSizeList("SOFYA_PS_THREADS", {1, 2, 4, 8});

  auto world_or = sofya::GenerateWorld(sofya::YagoDbpediaSpec(seed, scale));
  if (!world_or.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();
  world.kb1->store().EnsureIndexed();
  world.kb2->store().EnsureIndexed();

  std::vector<sofya::Term> relations;
  for (const std::string& iri : world.truth.RelationsOf("dbpd")) {
    relations.push_back(sofya::Term::Iri(iri));
    if (relations.size() >= max_relations) break;
  }

  std::printf(
      "=== E6: parallel multi-relation alignment (scale=%.2f, %zu "
      "relations, %.1f ms modeled latency) ===\n\n",
      scale, relations.size(), latency_ms);

  // One measurement = fresh stack (cold caches) + one AlignMany. The
  // remote stack sleeps its modeled latency for real, so wall-clock shows
  // exactly what a user of a public endpoint would see.
  auto run = [&](size_t threads, bool remote) {
    sofya::LocalEndpoint cand_local(world.kb1.get());
    sofya::LocalEndpoint ref_local(world.kb2.get());
    sofya::ThrottleOptions throttle;
    throttle.base_latency_ms = latency_ms;
    throttle.per_row_latency_ms = 0.0;
    throttle.jitter_ms = 0.0;
    throttle.sleep_for_latency = true;
    sofya::ThrottledEndpoint cand_remote(&cand_local, throttle);
    sofya::ThrottledEndpoint ref_remote(&ref_local, throttle);
    sofya::CachingEndpoint cand(remote
                                    ? static_cast<sofya::Endpoint*>(&cand_remote)
                                    : &cand_local);
    sofya::CachingEndpoint ref(remote
                                   ? static_cast<sofya::Endpoint*>(&ref_remote)
                                   : &ref_local);
    sofya::RelationAligner aligner(&cand, &ref, &world.links);

    RunPoint point;
    point.threads = threads;
    auto fleet = aligner.AlignMany(relations, threads);
    if (!fleet.ok()) {
      std::fprintf(stderr, "AlignMany failed: %s\n",
                   fleet.status().ToString().c_str());
      std::exit(1);
    }
    point.wall_ms = fleet->wall_ms;
    point.queries = fleet->total_queries();
    point.cache_hits = fleet->candidate_stats.cache_hits +
                       fleet->reference_stats.cache_hits;
    for (const auto& result : fleet->results) {
      point.accepted += result.AcceptedSubsumptions().size();
    }
    return point;
  };

  for (const bool remote : {true, false}) {
    std::printf("--- %s stack ---\n",
                remote ? "remote (real latency, throttled)" : "local (CPU-bound)");
    sofya::TableWriter table(
        {"threads", "wall ms", "speedup", "queries", "cache hits",
         "accepted"});
    double baseline_ms = 0.0;
    size_t baseline_accepted = 0;
    bool deterministic = true;
    for (size_t threads : thread_counts) {
      const RunPoint point = run(threads, remote);
      if (threads == thread_counts.front()) {
        baseline_ms = point.wall_ms;
        baseline_accepted = point.accepted;
      }
      if (point.accepted != baseline_accepted) deterministic = false;
      char wall[32], speedup[32];
      std::snprintf(wall, sizeof(wall), "%.0f", point.wall_ms);
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    point.wall_ms > 0 ? baseline_ms / point.wall_ms : 0.0);
      table.AddRow({std::to_string(point.threads), wall, speedup,
                    std::to_string(point.queries),
                    std::to_string(point.cache_hits),
                    std::to_string(point.accepted)});
    }
    std::printf("%s", table.ToAligned().c_str());
    std::printf("verdicts identical across thread counts: %s\n\n",
                deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
    if (!deterministic) return 1;
  }

  std::printf(
      "note: the remote stack is the paper's regime — alignment cost is "
      "dominated\nby endpoint round trips, so N workers overlap N waits "
      "and speedup tracks N\nuntil the shared cache/budget serializes. "
      "The local stack bounds compute-side\nscaling by the host's cores "
      "(this machine: %u).\n",
      std::thread::hardware_concurrency());
  return 0;
}
