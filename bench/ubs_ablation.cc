// E5 — UBS strategy ablation.
//
// Which part of Unbiased Sample Extraction does the work? Rows:
//   * no UBS                  — the pcaconf baseline;
//   * strategy A only         — equivalence filtering (case 1);
//   * strategy B only         — subsumption filtering (case 2);
//   * A + B (paper's UBS)     — both, with the mirrored reference-side probe;
//   * A + B, pair probes only — paper's literal formulation (no mirror);
//   * A + B, 1 contradiction  — the paper's "one case suffices" rule;
//   * A + B, per-fact coverage— PCA premise broken in the data.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/sofya.h"

namespace {

struct Config {
  const char* label;
  bool equiv_filter;
  bool subsum_filter;
  bool reference_siblings;
  size_t min_contradictions;
  double support_ratio;
  bool per_fact_coverage;
};

}  // namespace

int main() {
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 0.10;
  std::printf("=== E5: UBS strategy ablation (scale=%.2f) ===\n\n", scale);

  const Config configs[] = {
      {"no UBS (pca baseline)", false, false, false, 2, 0.3, false},
      {"strategy A only (equiv)", true, false, true, 2, 0.3, false},
      {"strategy B only (subsum)", false, true, true, 2, 0.3, false},
      {"A+B (full UBS)", true, true, true, 2, 0.3, false},
      {"A+B, pair probes only", true, true, false, 2, 0.3, false},
      {"A+B, 1 contradiction", true, true, true, 1, 0.0, false},
      {"A+B, per-fact coverage", true, true, true, 2, 0.3, true},
  };

  sofya::TableWriter table({"config", "subsum P", "subsum F1", "equiv P",
                            "equiv F1", "queries"});

  for (const Config& config : configs) {
    sofya::WorldSpec spec = sofya::YagoDbpediaSpec(2016, scale);
    if (config.per_fact_coverage) {
      for (auto* rels : {&spec.kb1_relations, &spec.kb2_relations}) {
        for (auto& rel : *rels) {
          rel.coverage_model = sofya::CoverageModel::kPerFact;
        }
      }
    }
    auto world_or = sofya::GenerateWorld(spec);
    if (!world_or.ok()) continue;
    sofya::SynthWorld world = std::move(world_or).value();

    sofya::LocalEndpoint yago(world.kb1.get());
    sofya::LocalEndpoint dbpd(world.kb2.get());

    sofya::DirectionRunOptions options;
    options.aligner.threshold = 0.6;
    options.aligner.use_ubs = config.equiv_filter || config.subsum_filter;
    options.aligner.check_equivalence = true;
    options.aligner.ubs.enable_equivalence_filter = config.equiv_filter;
    options.aligner.ubs.enable_subsumption_filter = config.subsum_filter;
    options.aligner.ubs.enable_reference_siblings =
        config.reference_siblings;
    options.aligner.ubs.min_contradictions = config.min_contradictions;
    options.aligner.ubs.contradiction_support_ratio = config.support_ratio;

    auto run = sofya::RunDirection(&yago, &dbpd, world.links,
                                   world.truth.RelationsOf("dbpd"), options);
    if (!run.ok()) continue;

    sofya::ScorePolicy policy;
    policy.tau = 0.6;
    policy.apply_ubs = true;
    auto subsum = sofya::ScoreSubsumptions(*run, world.truth, policy);
    auto equiv = sofya::ScoreEquivalences(*run, world.truth);

    table.AddRow({config.label, sofya::FormatDouble(subsum.precision(), 2),
                  sofya::FormatDouble(subsum.f1(), 2),
                  sofya::FormatDouble(equiv.precision(), 2),
                  sofya::FormatDouble(equiv.f1(), 2),
                  std::to_string(run->candidate_queries +
                                 run->reference_queries)});
  }

  table.Print(std::cout);
  std::printf("\n(direction yago ⊂ dbpd; τ=0.6; the per-fact-coverage row "
              "breaks the PCA completeness premise the method relies on)\n");
  return 0;
}
