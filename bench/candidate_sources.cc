// E7 — candidate sources on the zero-sameAs preset.
//
// The question this bench answers: what does each discovery source buy when
// entity links are gone? For every source (sameas, lexical, distribution,
// auto) it measures recall@k against the preset's gold equivalences and the
// discovery query cost per reference relation. Two more sections pin the
// refactor and the data structure:
//
//   * a verdict fingerprint of a full sameAs-source alignment on the movies
//     preset — CI compares it against a frozen constant, so any behavioral
//     drift of the refactored SameAsOverlapSource fails the build;
//   * LSH lookup scaling at P = 25k / 100k / 400k candidate relations —
//     the fraction of the inventory a lookup touches must stay far below
//     brute force (the sub-linearity claim of similarity/minhash_lsh.h).
//
// Pass --json (or set SOFYA_JSON=1) for a machine-readable summary (CI).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/sofya.h"
#include "similarity/minhash_lsh.h"
#include "util/hash.h"

namespace {

using sofya::AlignKind;
using sofya::CandidateFinder;
using sofya::CandidateFinderOptions;
using sofya::CandidateSourceKind;
using sofya::Term;

/// Gold kb1 equivalent of a reference relation, empty when none.
std::string GoldEquivalent(const sofya::GroundTruth& truth,
                           const std::string& reference_iri,
                           const std::vector<std::string>& candidates) {
  for (const std::string& c : candidates) {
    if (truth.Classify(reference_iri, c) == AlignKind::kEquivalence) return c;
  }
  return {};
}

struct SourceRun {
  double recall = 0.0;
  uint64_t queries = 0;
  size_t discovered = 0;
  double ms = 0.0;
};

/// Discovery over every reference relation of the zero-links world with one
/// source; recall@max_candidates against gold + tracked query cost.
SourceRun RunSource(sofya::SynthWorld* world, CandidateSourceKind kind) {
  sofya::LocalEndpoint cand_local(world->kb1.get());
  sofya::LocalEndpoint ref_local(world->kb2.get());
  sofya::TrackingEndpoint cand(&cand_local), ref(&ref_local);
  sofya::CrossKbTranslator to_cand(&world->links, cand_local.base_iri());

  CandidateFinderOptions options;
  options.source = kind;
  options.lexical_cache = std::make_shared<sofya::LexicalIndexCache>();
  CandidateFinder finder(&cand, &ref, &to_cand, options);

  const std::vector<std::string> refs = world->truth.RelationsOf("canon2");
  const std::vector<std::string> golds = world->truth.RelationsOf("canon1");

  SourceRun run;
  size_t scored = 0, hits = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& iri : refs) {
    const std::string gold = GoldEquivalent(world->truth, iri, golds);
    if (gold.empty()) continue;
    ++scored;
    auto candidates = finder.FindCandidates(Term::Iri(iri));
    if (!candidates.ok()) continue;
    run.discovered += candidates->size();
    for (const auto& c : *candidates) {
      if (c.relation.lexical() == gold) {
        ++hits;
        break;
      }
    }
  }
  run.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count();
  run.recall = scored == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(scored);
  run.queries = cand.stats().queries + ref.stats().queries;
  return run;
}

/// Order-stable fingerprint of a full alignment's verdicts: any change to
/// candidates, order, confidences, support or decisions changes the value.
uint64_t AlignmentFingerprint(const std::vector<sofya::AlignmentResult>& runs) {
  std::string blob;
  for (const auto& result : runs) {
    blob += result.reference_relation.lexical();
    blob += '{';
    for (const auto& v : result.verdicts) {
      blob += sofya::StrFormat(
          "%s|%zu|%.9f|%.9f|%zu|%zu|%d|%d|%d|%d;", v.relation.lexical().c_str(),
          v.cooccurrences, v.rule.pca_conf, v.rule.cwa_conf,
          v.rule.pca_body_size, v.rule.support,
          static_cast<int>(v.passed_threshold),
          static_cast<int>(v.ubs_subsumption_pruned),
          static_cast<int>(v.accepted), static_cast<int>(v.equivalence));
    }
    blob += '}';
  }
  return sofya::Fnv1a(blob.data(), blob.size());
}

/// Synthetic relation-label inventory of size `p`: two to three words from
/// a deterministic ~4k-word vocabulary, the lexical diversity a federation-
/// scale predicate inventory actually has (tens of thousands of ontologies,
/// not one). Seeded, so every run measures the identical inventory.
std::vector<std::string> SyntheticLabels(size_t p) {
  constexpr size_t kVocab = 4096;
  std::vector<std::string> words;
  words.reserve(kVocab);
  sofya::SplitMix64 mix(0xbe9cu);
  for (size_t w = 0; w < kVocab; ++w) {
    const size_t len = 4 + (mix.Next() % 5);
    std::string word;
    for (size_t c = 0; c < len; ++c) {
      word += static_cast<char>('a' + (mix.Next() % 26));
    }
    words.push_back(std::move(word));
  }
  std::vector<std::string> labels;
  labels.reserve(p);
  sofya::SplitMix64 pick(0x10ab5u);
  for (size_t i = 0; i < p; ++i) {
    std::string label = words[pick.Next() % kVocab];
    label += ' ';
    label += words[pick.Next() % kVocab];
    if (pick.Next() % 3 == 0) {
      label += ' ';
      label += words[pick.Next() % kVocab];
    }
    labels.push_back(std::move(label));
  }
  return labels;
}

struct ScalePoint {
  size_t p = 0;
  double avg_scanned = 0.0;
  double scan_fraction = 0.0;
  double avg_lookup_us = 0.0;
};

ScalePoint MeasureLshScale(size_t p) {
  const std::vector<std::string> labels = SyntheticLabels(p);
  sofya::MinHashLsh lsh;
  for (size_t i = 0; i < labels.size(); ++i) {
    lsh.Insert(static_cast<uint32_t>(i), labels[i]);
  }
  ScalePoint point;
  point.p = p;
  const size_t probes = 200;
  uint64_t scanned = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < probes; ++i) {
    sofya::MinHashLsh::LookupStats stats;
    lsh.Lookup(labels[(i * 7919) % labels.size()], &stats);
    scanned += stats.ids_scanned;
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  point.avg_scanned =
      static_cast<double>(scanned) / static_cast<double>(probes);
  point.scan_fraction = point.avg_scanned / static_cast<double>(p);
  point.avg_lookup_us = us / static_cast<double>(probes);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = std::getenv("SOFYA_JSON") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (!json) std::printf("=== E7: candidate sources without sameAs ===\n\n");

  // ----------------------------------------------------------------------
  // Section 1: recall@8 + discovery cost per source on the zero-links world.
  auto world_or = sofya::GenerateWorld(sofya::NoLinksWorldSpec());
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  sofya::SynthWorld world = std::move(world_or).value();

  const struct {
    CandidateSourceKind kind;
    const char* name;
  } kinds[] = {
      {CandidateSourceKind::kSameAs, "sameas"},
      {CandidateSourceKind::kLexical, "lexical"},
      {CandidateSourceKind::kDistribution, "distribution"},
      {CandidateSourceKind::kAuto, "auto"},
  };

  sofya::TableWriter table(
      {"source", "recall@8", "queries", "discovered", "ms"});
  SourceRun runs[4];
  for (size_t i = 0; i < 4; ++i) {
    runs[i] = RunSource(&world, kinds[i].kind);
    table.AddRow({kinds[i].name, sofya::FormatDouble(runs[i].recall, 2),
                  std::to_string(runs[i].queries),
                  std::to_string(runs[i].discovered),
                  sofya::FormatDouble(runs[i].ms, 1)});
  }
  if (!json) {
    std::printf("zero-links preset (%zu aligned pairs, 0 sameAs links):\n",
                world.truth.CountSubsumptions("canon2", "canon1"));
    table.Print(std::cout);
    std::printf(
        "\nlexical finds the gold through labels alone; sameas works here "
        "only because the preset shares identifiers (the translator's "
        "identity fallback) — with disjoint namespaces its recall is 0.\n\n");
  }

  // ----------------------------------------------------------------------
  // Section 2: sameAs-source verdict fingerprint on the movies preset (the
  // refactor parity pin CI compares against a frozen constant).
  auto movies = std::move(sofya::GenerateWorld(sofya::MoviesWorldSpec())).value();
  sofya::LocalEndpoint mcand(movies.kb1.get());
  sofya::LocalEndpoint mref(movies.kb2.get());
  sofya::RelationAligner aligner(&mcand, &mref, &movies.links);
  std::vector<sofya::AlignmentResult> results;
  for (const std::string& iri : movies.truth.RelationsOf("filmkb")) {
    auto result = aligner.Align(Term::Iri(iri));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*result));
  }
  const uint64_t fingerprint = AlignmentFingerprint(results);
  if (!json) {
    std::printf("movies sameAs verdict fingerprint: %016llx\n\n",
                static_cast<unsigned long long>(fingerprint));
  }

  // ----------------------------------------------------------------------
  // Section 3: LSH lookup scaling — sub-linear in the inventory size.
  const size_t scales[] = {25000, 100000, 400000};
  ScalePoint points[3];
  sofya::TableWriter scale_table(
      {"P", "avg ids scanned", "scan fraction", "lookup us"});
  for (size_t i = 0; i < 3; ++i) {
    points[i] = MeasureLshScale(scales[i]);
    scale_table.AddRow({std::to_string(points[i].p),
                        sofya::FormatDouble(points[i].avg_scanned, 1),
                        sofya::FormatDouble(points[i].scan_fraction, 4),
                        sofya::FormatDouble(points[i].avg_lookup_us, 1)});
  }
  if (!json) {
    scale_table.Print(std::cout);
    std::printf(
        "\nbrute force scores all P labels per reference relation; the LSH "
        "lattice touches the fraction above (bucket mates only).\n");
  }

  if (json) {
    std::printf("{\n  \"preset\": \"nolinks\",\n  \"sources\": {\n");
    for (size_t i = 0; i < 4; ++i) {
      std::printf(
          "    \"%s\": {\"recall_at_8\": %.4f, \"queries\": %llu, "
          "\"discovered\": %zu, \"ms\": %.1f}%s\n",
          kinds[i].name, runs[i].recall,
          static_cast<unsigned long long>(runs[i].queries), runs[i].discovered,
          runs[i].ms, i + 1 < 4 ? "," : "");
    }
    std::printf("  },\n  \"sameas_fingerprint\": \"%016llx\",\n",
                static_cast<unsigned long long>(fingerprint));
    std::printf("  \"lsh_scaling\": [\n");
    for (size_t i = 0; i < 3; ++i) {
      std::printf(
          "    {\"P\": %zu, \"avg_scanned\": %.1f, \"scan_fraction\": %.6f, "
          "\"avg_lookup_us\": %.1f}%s\n",
          points[i].p, points[i].avg_scanned, points[i].scan_fraction,
          points[i].avg_lookup_us, i + 1 < 3 ? "," : "");
    }
    std::printf("  ]\n}\n");
  }
  return 0;
}
