// Store bench — sharded scan parallelism and snapshot load, quantified.
//
// Two sections, both with hard correctness gates (the bench exits nonzero
// on any mismatch, so the CI smoke run doubles as an integration test):
//
//   1. parallel shard scan A/B — a skewed synthetic store (one promoted
//      predicate dominating the tail) is scanned through the SPARQL engine
//      sequentially and with a work-stealing pool at 2 and 4 threads.
//      Result rows must be bit-identical (same order, not just same set);
//      wall time quantifies what fanning per-shard spans out buys.
//   2. snapshot load vs N-Triples re-parse — the same dataset is written
//      both ways, then cold-loaded both ways. The snapshot path is a
//      checksum pass + dictionary rebuild + mmap attach; the parse path
//      re-tokenizes every line. Loaded stores must answer a probe query
//      identically.
//
// Pass --json (or set SOFYA_JSON=1) for a machine-readable summary (CI).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "core/sofya.h"
#include "rdf/store_snapshot.h"

namespace {

struct ScanPoint {
  size_t threads = 1;
  double ms = 0;
  bool identical = true;
};

/// Times `iterations` evaluations of `query` on an engine using `pool`
/// (nullptr = sequential), after one untimed warm-up that also forces the
/// lazy shard sorts so no mode pays one-time costs.
ScanPoint RunScan(const sofya::TripleStore& store,
                  const sofya::Dictionary& dict,
                  const sofya::SelectQuery& query, sofya::ThreadPool* pool,
                  int iterations,
                  const std::vector<std::vector<sofya::TermId>>& expect) {
  ScanPoint out;
  out.threads = pool ? pool->num_threads() : 1;
  sofya::Engine::Options options;
  options.scan_pool = pool;
  options.parallel_scan_min_rows = 1 << 12;
  sofya::Engine engine(&store, &dict, options);
  auto warm = engine.Select(query);
  if (!warm.ok()) {
    out.identical = false;
    return out;
  }
  out.identical = warm->rows == expect;  // Bit-identical, order included.
  sofya::WallTimer timer;
  for (int i = 0; i < iterations; ++i) {
    auto repeat = engine.Select(query);
    if (!repeat.ok() || repeat->rows.size() != expect.size()) {
      out.identical = false;
    }
  }
  out.ms = timer.ElapsedMillis();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = std::getenv("SOFYA_JSON") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 1.0;

  // ----------------------------------------------------------------------
  // The dataset: one hot predicate big enough to promote and to dwarf the
  // per-chunk dispatch overhead, plus a tail of cold predicates so the
  // hash ring is populated too.
  const size_t hot_facts = static_cast<size_t>(300000 * scale);
  const size_t subjects = hot_facts / 4;
  sofya::KnowledgeBase kb("scanbench", "http://scan.org/");
  // Promote well below the default threshold so the dedicated-group scan
  // path is exercised at every SOFYA_SCALE, not just full size.
  kb.store() = sofya::TripleStore(
      sofya::StoreOptions{/*num_hash_shards=*/8,
                          /*promote_threshold=*/8192, /*split_factor=*/8});
  {
    sofya::TripleStore::BulkLoadScope bulk(&kb.store(), hot_facts + 20000);
    for (size_t i = 0; i < hot_facts; ++i) {
      kb.AddFact("s" + std::to_string(i % subjects), "hot",
                 "v" + std::to_string((i * 13 + 7) % 4093));
    }
    for (size_t i = 0; i < 10000; ++i) {
      kb.AddFact("s" + std::to_string(i % subjects),
                 "cold" + std::to_string(i % 7), "c" + std::to_string(i % 31));
    }
  }
  const sofya::TermId hot = kb.RelationId("hot");
  const sofya::TermId cold0 = kb.RelationId("cold0");

  if (!json) {
    std::printf("=== store scan: sharded parallel vs sequential "
                "(%zu triples, %zu shards, %zu promoted) ===\n\n",
                kb.size(), kb.store().num_shards(),
                kb.store().PromotedPredicates().size());
  }

  // Two query shapes: a pure driver scan and a join where only the driver
  // clause parallelizes and the probe side rides along per worker.
  sofya::SelectQuery scan_q;
  {
    const sofya::VarId s = scan_q.NewVar("s");
    const sofya::VarId v = scan_q.NewVar("v");
    scan_q.Where(sofya::NodeRef::Variable(s), sofya::NodeRef::Constant(hot),
                 sofya::NodeRef::Variable(v));
  }
  sofya::SelectQuery join_q;
  {
    const sofya::VarId s = join_q.NewVar("s");
    const sofya::VarId v = join_q.NewVar("v");
    const sofya::VarId c = join_q.NewVar("c");
    join_q.Where(sofya::NodeRef::Variable(s), sofya::NodeRef::Constant(hot),
                 sofya::NodeRef::Variable(v));
    join_q.Where(sofya::NodeRef::Variable(s), sofya::NodeRef::Constant(cold0),
                 sofya::NodeRef::Variable(c));
  }

  const int iterations = 8;
  bool all_identical = true;
  struct Shape {
    const char* name;
    const sofya::SelectQuery* query;
    std::vector<ScanPoint> points;
  };
  std::vector<Shape> shapes = {{"scan", &scan_q, {}}, {"join", &join_q, {}}};
  sofya::ThreadPool pool2(2), pool4(4);
  for (Shape& shape : shapes) {
    // The sequential run is the oracle: parallel must reproduce its rows
    // byte for byte, in order.
    sofya::Engine seq(&kb.store(), &kb.dict());
    auto oracle = seq.Select(*shape.query);
    if (!oracle.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   oracle.status().ToString().c_str());
      return 1;
    }
    shape.points.push_back(RunScan(kb.store(), kb.dict(), *shape.query,
                                   nullptr, iterations, oracle->rows));
    shape.points.push_back(RunScan(kb.store(), kb.dict(), *shape.query,
                                   &pool2, iterations, oracle->rows));
    shape.points.push_back(RunScan(kb.store(), kb.dict(), *shape.query,
                                   &pool4, iterations, oracle->rows));
    for (const ScanPoint& p : shape.points) {
      if (!p.identical) all_identical = false;
    }
  }

  if (!json) {
    sofya::TableWriter table(
        {"shape", "threads", "ms/iter", "speedup", "identical"});
    for (const Shape& shape : shapes) {
      const double base = shape.points[0].ms;
      for (const ScanPoint& p : shape.points) {
        table.AddRow({shape.name, std::to_string(p.threads),
                      sofya::FormatDouble(p.ms / iterations, 2),
                      sofya::FormatDouble(base / p.ms, 2) + "x",
                      p.identical ? "yes" : "NO (BUG)"});
      }
    }
    table.Print(std::cout);
    std::printf("\nthe parallel path merges per-chunk rows in shard order — "
                "identical rows AND stats, or the bench fails\n");
  }

  // ----------------------------------------------------------------------
  // Section 2: snapshot mmap load vs N-Triples re-parse, same dataset.
  const std::string dir =
      std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp";
  const std::string nt_path = dir + "/sofya_bench_store.nt";
  const std::string snap_path = dir + "/sofya_bench_store.snap";

  auto nt_doc = sofya::WriteNTriplesString(kb.store(), kb.dict());
  if (!nt_doc.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", nt_doc.status().ToString().c_str());
    return 1;
  }
  {
    std::ofstream out(nt_path, std::ios::trunc);
    out << *nt_doc;
  }
  auto saved = sofya::SaveStoreSnapshot(kb.store(), kb.dict(), snap_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", saved.status().ToString().c_str());
    return 1;
  }

  double parse_ms = 0, snap_ms = 0;
  size_t parse_triples = 0, snap_triples = 0;
  bool load_parity = true;
  {
    sofya::KnowledgeBase parsed("parsed", "http://scan.org/");
    std::ifstream in(nt_path);
    sofya::WallTimer timer;
    auto report =
        sofya::ParseNTriples(in, &parsed.dict(), &parsed.store());
    parse_ms = timer.ElapsedMillis();
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    parse_triples = parsed.size();

    sofya::KnowledgeBase snapped("snapped", "http://scan.org/");
    sofya::WallTimer timer2;
    auto loaded = snapped.LoadSnapshot(snap_path);
    snap_ms = timer2.ElapsedMillis();
    if (!loaded.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    snap_triples = snapped.size();

    // Parity gate: both cold stores answer the probe join identically to
    // the original (sorted compare — enumeration order across a re-parse
    // depends on insert order, which the snapshot intentionally preserves
    // but the NT writer's own ordering may not).
    auto probe = [&](sofya::KnowledgeBase* target) {
      const sofya::TermId h = target->RelationId("hot");
      sofya::SelectQuery q;
      const sofya::VarId s = q.NewVar("s");
      const sofya::VarId v = q.NewVar("v");
      q.Where(sofya::NodeRef::Variable(s), sofya::NodeRef::Constant(h),
              sofya::NodeRef::Variable(v));
      auto rows = sofya::Evaluate(target->store(), q);
      std::vector<std::string> rendered;
      if (rows.ok()) {
        for (const auto& row : rows->rows) {
          std::string line;
          for (sofya::TermId id : row) {
            line += target->dict().Decode(id).ToNTriples() + "\t";
          }
          rendered.push_back(std::move(line));
        }
      }
      std::sort(rendered.begin(), rendered.end());
      return rendered;
    };
    const auto original = probe(&kb);
    load_parity = probe(&parsed) == original && probe(&snapped) == original &&
                  parse_triples == kb.size() && snap_triples == kb.size();
  }

  // ----------------------------------------------------------------------
  // Section 3: madvise readahead A/B on the snapshot path. The loader hints
  // MADV_SEQUENTIAL + MADV_WILLNEED after mmap (store_snapshot.cc); here the
  // same snapshot is loaded and fully scanned with the hints suppressed
  // (SOFYA_SNAPSHOT_NO_MADVISE) and with them on. On a warm page cache the
  // two converge — the numbers are recorded, not asserted; the interesting
  // runs are cold-cache ones (drop caches, or a file bigger than RAM).
  struct MadvisePoint {
    double load_ms = 0;
    double scan_ms = 0;
    size_t rows = 0;
  };
  auto run_mapped = [&](bool hints) {
    MadvisePoint point;
    if (hints) {
      ::unsetenv("SOFYA_SNAPSHOT_NO_MADVISE");
    } else {
      ::setenv("SOFYA_SNAPSHOT_NO_MADVISE", "1", 1);
    }
    sofya::KnowledgeBase cold("cold", "http://scan.org/");
    sofya::WallTimer load_timer;
    auto loaded = cold.LoadSnapshot(snap_path);
    point.load_ms = load_timer.ElapsedMillis();
    if (!loaded.ok()) return point;
    const sofya::TermId h = cold.RelationId("hot");
    sofya::SelectQuery q;
    const sofya::VarId s = q.NewVar("s");
    const sofya::VarId v = q.NewVar("v");
    q.Where(sofya::NodeRef::Variable(s), sofya::NodeRef::Constant(h),
            sofya::NodeRef::Variable(v));
    sofya::WallTimer scan_timer;
    auto rows = sofya::Evaluate(cold.store(), q);
    point.scan_ms = scan_timer.ElapsedMillis();
    if (rows.ok()) point.rows = rows->rows.size();
    return point;
  };
  const MadvisePoint no_hints = run_mapped(/*hints=*/false);
  const MadvisePoint with_hints = run_mapped(/*hints=*/true);
  ::unsetenv("SOFYA_SNAPSHOT_NO_MADVISE");
  const bool madvise_parity = no_hints.rows == with_hints.rows;
  if (!json) {
    std::printf("\n=== snapshot readahead hints (load + first full scan) "
                "===\n\n");
    sofya::TableWriter table({"hints", "load ms", "first-scan ms", "rows"});
    table.AddRow({"off", sofya::FormatDouble(no_hints.load_ms, 1),
                  sofya::FormatDouble(no_hints.scan_ms, 1),
                  std::to_string(no_hints.rows)});
    table.AddRow({"on", sofya::FormatDouble(with_hints.load_ms, 1),
                  sofya::FormatDouble(with_hints.scan_ms, 1),
                  std::to_string(with_hints.rows)});
    table.Print(std::cout);
    std::printf("\nwarm page cache converges; the hints pay on cold-cache "
                "loads (recorded, not asserted)\n");
  }

  const double load_speedup = snap_ms > 0 ? parse_ms / snap_ms : 0.0;
  if (!json) {
    std::printf("\n=== cold start: snapshot mmap load vs N-Triples re-parse "
                "===\n\n");
    sofya::TableWriter table({"path", "triples", "ms", "speedup"});
    table.AddRow({"N-Triples parse", std::to_string(parse_triples),
                  sofya::FormatDouble(parse_ms, 1), "1.0x"});
    table.AddRow({"snapshot mmap", std::to_string(snap_triples),
                  sofya::FormatDouble(snap_ms, 1),
                  sofya::FormatDouble(load_speedup, 1) + "x"});
    table.Print(std::cout);
    std::printf("\nsnapshot: %llu bytes on disk; load verifies the checksum, "
                "rebuilds the dictionary, and attaches triples zero-copy\n",
                static_cast<unsigned long long>(saved->bytes));
    std::printf("loaded stores answer probes identically: %s\n",
                load_parity ? "yes" : "NO (BUG)");
  }

  if (json) {
    std::printf("{");
    std::printf("\"triples\": %zu, \"shards\": %zu, \"promoted\": %zu, ",
                kb.size(), kb.store().num_shards(),
                kb.store().PromotedPredicates().size());
    std::printf("\"scan\": [");
    bool first = true;
    for (const Shape& shape : shapes) {
      const double base = shape.points[0].ms;
      for (const ScanPoint& p : shape.points) {
        std::printf("%s{\"shape\": \"%s\", \"threads\": %zu, "
                    "\"ms_per_iter\": %.3f, \"speedup\": %.2f, "
                    "\"identical\": %s}",
                    first ? "" : ", ", shape.name, p.threads,
                    p.ms / iterations, base / p.ms,
                    p.identical ? "true" : "false");
        first = false;
      }
    }
    std::printf("], ");
    std::printf("\"snapshot\": {\"bytes\": %llu, \"parse_ms\": %.2f, "
                "\"mmap_ms\": %.2f, \"load_speedup\": %.2f, "
                "\"parity\": %s}, ",
                static_cast<unsigned long long>(saved->bytes), parse_ms,
                snap_ms, load_speedup, load_parity ? "true" : "false");
    std::printf("\"madvise\": {\"off\": {\"load_ms\": %.2f, "
                "\"first_scan_ms\": %.2f}, \"on\": {\"load_ms\": %.2f, "
                "\"first_scan_ms\": %.2f}, \"parity\": %s}",
                no_hints.load_ms, no_hints.scan_ms, with_hints.load_ms,
                with_hints.scan_ms, madvise_parity ? "true" : "false");
    std::printf("}\n");
  }

  std::remove(nt_path.c_str());
  std::remove(snap_path.c_str());

  // Correctness gates: parallelism and persistence must never change
  // answers. Speedups are reported, not asserted — CI runners vary.
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: parallel scan rows differ from sequential\n");
    return 1;
  }
  if (!load_parity) {
    std::fprintf(stderr,
                 "FATAL: snapshot/parse cold loads disagree with source\n");
    return 1;
  }
  if (!madvise_parity) {
    std::fprintf(stderr,
                 "FATAL: madvise hints changed scan results\n");
    return 1;
  }
  return 0;
}
