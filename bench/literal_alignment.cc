// E7 — entity-literal relation alignment under surface noise.
//
// "If r_sub is an entity-literal relation, we ... apply string similarity
// functions to align the literals" (Section 2.2). Sweeps the literal noise
// level and the similarity metric on a names-heavy world.

#include <cstdio>
#include <iostream>

#include "core/sofya.h"

namespace {

/// Two-KB world where the only shared relations are literal-valued.
sofya::WorldSpec LiteralWorldSpec(uint64_t seed, double noise_level) {
  sofya::WorldSpec spec;
  spec.seed = seed;
  spec.num_entities = 3000;
  spec.num_types = 2;
  spec.kb1_name = "names1";
  spec.kb2_name = "names2";

  spec.concepts.push_back({.name = "personName",
                           .num_facts = 900,
                           .domain_type = 0,
                           .literal_range = true,
                           .literal_kind = sofya::LiteralKind::kName});
  spec.concepts.push_back({.name = "birthYear",
                           .num_facts = 900,
                           .domain_type = 0,
                           .literal_range = true,
                           .literal_kind = sofya::LiteralKind::kYear});

  spec.kb1_relations.push_back(
      {.local_name = "label", .concepts = {"personName"}, .coverage = 0.9});
  spec.kb1_relations.push_back(
      {.local_name = "born", .concepts = {"birthYear"}, .coverage = 0.9});
  spec.kb2_relations.push_back(
      {.local_name = "name", .concepts = {"personName"}, .coverage = 0.9});
  spec.kb2_relations.push_back(
      {.local_name = "yearOfBirth", .concepts = {"birthYear"}, .coverage = 0.9});

  spec.link_coverage = 0.95;
  // Asymmetric surface conventions, scaled by noise_level.
  spec.kb1_literal_noise.case_change_rate = 0.6 * noise_level;
  spec.kb1_literal_noise.typo_rate = 0.5 * noise_level;
  spec.kb2_literal_noise.abbreviate_rate = 0.5 * noise_level;
  spec.kb2_literal_noise.token_swap_rate = 0.3 * noise_level;
  return spec;
}

}  // namespace

int main() {
  std::printf("=== E7: entity-literal alignment vs surface noise ===\n\n");

  sofya::TableWriter table({"noise", "metric", "subsum P", "subsum R",
                            "subsum F1"});
  for (double noise : {0.0, 0.5, 1.0, 1.5}) {
    for (auto metric :
         {sofya::StringMetric::kLevenshtein, sofya::StringMetric::kJaroWinkler,
          sofya::StringMetric::kTokenJaccard, sofya::StringMetric::kHybrid}) {
      auto world_or = sofya::GenerateWorld(LiteralWorldSpec(31, noise));
      if (!world_or.ok()) continue;
      sofya::SynthWorld world = std::move(world_or).value();

      sofya::LocalEndpoint cand(world.kb1.get());
      sofya::LocalEndpoint ref(world.kb2.get());
      sofya::DirectionRunOptions options;
      options.aligner.threshold = 0.5;
      options.aligner.check_equivalence = false;
      options.aligner.sampler.literal_options.metric = metric;
      options.aligner.finder.literal_options.metric = metric;

      auto run = sofya::RunDirection(&cand, &ref, world.links,
                                     world.truth.RelationsOf("names2"),
                                     options);
      if (!run.ok()) continue;
      sofya::ScorePolicy policy;
      policy.tau = 0.5;
      policy.apply_ubs = true;
      auto pr = sofya::ScoreSubsumptions(*run, world.truth, policy);
      table.AddRow({sofya::FormatDouble(noise, 1),
                    sofya::StringMetricName(metric),
                    sofya::FormatDouble(pr.precision(), 2),
                    sofya::FormatDouble(pr.recall(), 2),
                    sofya::FormatDouble(pr.f1(), 2)});
    }
  }
  table.Print(std::cout);
  std::printf("\n(gold: label<=>name and born<=>yearOfBirth; years are "
              "numeric-matched, names take the configured string metric)\n");
  return 0;
}
