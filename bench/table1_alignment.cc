// E1 — reproduces Table 1 of the paper:
//
//   "Alignment subsumptions – YAGO and DBpedia relations"
//
//     ILP                 yago⊂dbpd P/F1    dbpd⊂yago P/F1
//     pcaconf (τ>0.3)        0.55 / 0.58       0.51 / 0.48
//     cwaconf (τ>0.1)        0.56 / 0.59       0.55 / 0.53
//     UBS pcaconf            0.95 / 0.97       0.91 / 0.82
//
// Protocol (Section 3): sample size 10 subjects; τ chosen per measure to
// maximize mean F1 over both directions; UBS needs a single contradiction.
//
// Environment knobs:
//   SOFYA_T1_SCALE  world scale in (0,1]; default 0.25. 1.0 = full
//                   92-relation / 1313-relation world (slower).
//   SOFYA_T1_SEED   world seed; default 2016.

#include <cstdio>
#include <cstdlib>

#include "core/sofya.h"

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : static_cast<uint64_t>(std::atoll(value));
}

}  // namespace

int main() {
  sofya::Table1Options options;
  options.scale = EnvDouble("SOFYA_T1_SCALE", 0.25);
  options.seed = EnvU64("SOFYA_T1_SEED", 2016);
  options.sample_size = 10;

  std::printf("=== E1: Table 1 — alignment subsumptions (scale=%.2f, "
              "seed=%llu, sample size=10) ===\n",
              options.scale,
              static_cast<unsigned long long>(options.seed));

  auto report = sofya::RunTable1(options);
  if (!report.ok()) {
    std::fprintf(stderr, "Table 1 run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", report->world_description.c_str());
  std::printf("\n%s\n", report->ToAlignedTable().c_str());
  std::printf("paper column = values reported in the paper "
              "(yago⊂dbpd P/F1 | dbpd⊂yago P/F1)\n");
  std::printf("\ncost: %llu endpoint queries total, %llu rows shipped, "
              "%.0f ms wall\n",
              static_cast<unsigned long long>(report->total_queries),
              static_cast<unsigned long long>(report->total_rows_shipped),
              report->total_wall_ms);
  std::printf("\ncsv:\n%s", report->ToCsv().c_str());
  return 0;
}
