// E6 — dependence on the sameAs link set.
//
// SSE only uses subjects/objects with links into the other KB (Section
// 2.2), so link coverage bounds what any instance-based method can see,
// and wrong links corrupt the evidence. Sweeps coverage and noise.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/sofya.h"

namespace {

void RunSweep(const char* title, const std::vector<double>& values,
              bool sweep_noise, double scale) {
  std::printf("--- %s ---\n", title);
  sofya::TableWriter table(
      {sweep_noise ? "link noise" : "link coverage", "UBS P", "UBS R",
       "UBS F1", "links (ok+bad)"});
  for (double value : values) {
    sofya::WorldSpec spec = sofya::YagoDbpediaSpec(2016, scale);
    if (sweep_noise) {
      spec.link_noise = value;
    } else {
      spec.link_coverage = value;
    }
    auto world_or = sofya::GenerateWorld(spec);
    if (!world_or.ok()) continue;
    sofya::SynthWorld world = std::move(world_or).value();

    sofya::LocalEndpoint yago(world.kb1.get());
    sofya::LocalEndpoint dbpd(world.kb2.get());
    sofya::DirectionRunOptions options;
    options.aligner.threshold = 0.6;
    options.aligner.check_equivalence = false;
    auto run = sofya::RunDirection(&yago, &dbpd, world.links,
                                   world.truth.RelationsOf("dbpd"), options);
    if (!run.ok()) continue;
    sofya::ScorePolicy policy;
    policy.tau = 0.6;
    policy.apply_ubs = true;
    auto pr = sofya::ScoreSubsumptions(*run, world.truth, policy);
    table.AddRow({sofya::FormatDouble(value, 2),
                  sofya::FormatDouble(pr.precision(), 2),
                  sofya::FormatDouble(pr.recall(), 2),
                  sofya::FormatDouble(pr.f1(), 2),
                  sofya::StrFormat("%zu+%zu", world.stats.links_correct,
                                   world.stats.links_wrong)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  const double scale =
      std::getenv("SOFYA_SCALE") ? std::atof(std::getenv("SOFYA_SCALE")) : 0.08;
  std::printf("=== E6: sameAs coverage / noise sensitivity (scale=%.2f) "
              "===\n\n",
              scale);
  RunSweep("coverage sweep (noise = 0)",
           {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}, /*sweep_noise=*/false, scale);
  RunSweep("noise sweep (coverage = 0.85)", {0.0, 0.05, 0.1, 0.2, 0.4},
           /*sweep_noise=*/true, scale);
  std::printf("(recall degrades with missing links — fewer usable samples; "
              "precision degrades with wrong links — corrupted evidence)\n");
  return 0;
}
