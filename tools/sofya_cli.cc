// sofya — command-line interface to the library.
//
//   sofya generate --preset movies --out DIR [--seed N] [--scale S]
//       Write a benchmark world as kb1.nt / kb2.nt / links.nt / truth.tsv.
//
//   sofya align --kb1 F|URL --kb2 F|URL --links F --relation IRI[,IRI...]
//               [--threads N] [--tau T] [--measure pca|cwa] [--no-ubs]
//               [--sample N] [--base1 IRI] [--base2 IRI]
//       Load two datasets + an owl:sameAs link file and align the given
//       reference relation(s) (IRIs live in --kb2) on the fly. A dataset
//       is either an N-Triples file or an http:// SPARQL endpoint URL
//       (live DBpedia/Wikidata-style access; --base1/--base2 give the
//       remote datasets' entity namespaces for sameAs translation).
//       --relation all aligns every kb2 relation; --threads N fans the
//       relations out across N workers (verdicts are identical to
//       sequential for any N).
//
//   sofya query --kb F --sparql 'SELECT ...' [--scan-threads N]
//   sofya query --endpoint-url URL --sparql 'SELECT ...'
//       Run a SPARQL SELECT (the supported subset) against a local
//       dataset or a remote SPARQL endpoint (retried with backoff on
//       transient failures). --scan-threads N fans large driver scans
//       across a thread pool (results identical to sequential).
//
//   sofya snapshot save --kb F --out F.snap
//   sofya snapshot load --kb F.snap
//       Freeze a dataset to the binary snapshot format (store_snapshot.h)
//       or verify/mmap-load one. Everywhere a --kb flag takes a file, a
//       .snap snapshot is auto-detected and mmap-loaded instead of parsed.
//
//   sofya serve --kb F [--port N] [--address A] [--path /sparql]
//               [--scan-threads N] [--workers N] [--max-concurrent N]
//               [--per-client-concurrent N] [--quota N] [--retry-after-s S]
//               [--port-file F]
//       Serve the dataset as a SPARQL 1.1 Protocol endpoint (GET ?query=
//       and POST, results as application/sparql-results+json) until
//       SIGINT/SIGTERM. --port 0 (default) picks an ephemeral port;
//       --port-file writes the bound port for scripts. The admission knobs
//       shed overload with 503/429 + Retry-After — exactly what the
//       client-side retry stack (query --endpoint-url, align against a
//       URL) backs off on and recovers from.
//
//   sofya explain --kb F --sparql 'SELECT ...' [--legacy-planner]
//                 [--greedy-planner] [--adaptive] [--execute] [--json]
//       Show the join-order plan the engine would run the query with:
//       chosen clause order, per-clause cardinality estimates (per-stage
//       fan-out and cumulative), attached filters. --legacy-planner shows
//       the bound-position heuristic's order, --greedy-planner the v1
//       greedy min-cost order (both A/B baselines for the default
//       Selinger-style DP); --execute also runs the query and merges the
//       observed per-clause row counts into the table (estimated-vs-actual)
//       plus the evaluation metering; --adaptive enables mid-execution
//       re-planning during --execute (re-plan count reported); --json
//       emits the whole report as one machine-readable JSON object.
//
//   --legacy-planner is also accepted by align and query (local datasets):
//   it switches the in-process engines to the legacy clause ordering;
//   query also takes --greedy-planner / --adaptive.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/run_manifest.h"
#include "core/sofya.h"
#include "endpoint/recording_endpoint.h"
#include "endpoint/replay_endpoint.h"
#include "rdf/store_snapshot.h"
#include "util/timer.h"

namespace sofya {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sofya generate --preset tiny|movies|music|nolinks|"
               "yago-dbpedia --out DIR [--seed N] [--scale S] [--inverses]\n"
               "  sofya align --kb1 FILE|URL --kb2 FILE|URL --links FILE "
               "--relation IRI[,IRI...]|all [--threads N] "
               "[--schedule phase|relation] [--tau T] "
               "[--measure pca|cwa] [--no-ubs] [--sample N] [--seed N] "
               "[--candidate-source sameas|lexical|distribution|auto] "
               "[--base1 IRI] [--base2 IRI] [--legacy-planner]\n"
               "  sofya record ...align flags... --cassette-dir DIR\n"
               "      (align + capture every endpoint interaction into "
               "DIR/kb1.cass, DIR/kb2.cass, DIR/run.manifest)\n"
               "  sofya replay --links FILE --relation ... --cassette-dir DIR "
               "[--lenient --kb1 F --kb2 F [--update]] "
               "[--manifest-out F] [--expect-manifest F]\n"
               "      (re-run the alignment from the cassettes, no network/"
               "dataset; strict mode fails on unrecorded queries)\n"
               "  sofya manifest diff A.manifest B.manifest\n"
               "  sofya query (--kb FILE | --endpoint-url URL) "
               "--sparql 'SELECT ...' [--legacy-planner] [--greedy-planner] "
               "[--adaptive] [--scan-threads N]\n"
               "  sofya serve --kb FILE [--port N] [--address A] "
               "[--path /sparql] [--scan-threads N] [--workers N] "
               "[--max-concurrent N] [--per-client-concurrent N] "
               "[--quota N] [--retry-after-s S] [--port-file FILE]\n"
               "  sofya explain --kb FILE --sparql 'SELECT ...' "
               "[--legacy-planner] [--greedy-planner] [--adaptive] "
               "[--execute] [--json]\n"
               "  sofya snapshot save --kb FILE --out FILE.snap\n"
               "  sofya snapshot load --kb FILE.snap\n"
               "(--kb accepts N-Triples or .snap snapshots everywhere; "
               "snapshots mmap-load)\n");
  return 2;
}

/// Minimal flag parser: --key value and boolean --key.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "true";
    }
  }
  return flags;
}

/// Loads a dataset into `kb`, auto-detecting the format: snapshot files
/// (rdf/store_snapshot.h magic) mmap-load in O(dictionary), anything else
/// parses as N-Triples with a file-size-derived capacity reservation.
Status LoadKb(const std::string& path, KnowledgeBase* kb) {
  WallTimer timer;
  if (LooksLikeSnapshot(path)) {
    SOFYA_ASSIGN_OR_RETURN(SnapshotReport report, kb->LoadSnapshot(path));
    std::fprintf(stderr, "loaded %s: %zu triples (snapshot, %.0f ms)\n",
                 path.c_str(), report.triples, timer.ElapsedMillis());
    return Status::OK();
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::error_code ec;
  const uint64_t file_bytes = std::filesystem::file_size(path, ec);
  const size_t expected =
      ec ? 0 : static_cast<size_t>(file_bytes / 120);  // ~bytes per triple.
  SOFYA_ASSIGN_OR_RETURN(
      NTriplesParseReport report,
      ParseNTriples(in, &kb->dict(), &kb->store(), expected));
  std::fprintf(stderr, "loaded %s: %zu triples (%.0f ms)\n", path.c_str(),
               report.triples_parsed, timer.ElapsedMillis());
  return Status::OK();
}

Status LoadLinks(const std::string& path, SameAsIndex* links) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string line;
  size_t n = 0, line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    Term s, p, o;
    Status st = ParseNTriplesLine(line, &s, &p, &o);
    if (st.IsNotFound()) continue;
    SOFYA_RETURN_IF_ERROR(st.WithContext(StrFormat("line %zu", line_no)));
    if (p.lexical() != ns::kOwlSameAs) continue;
    links->AddLink(s, o);
    ++n;
  }
  std::fprintf(stderr, "loaded %s: %zu sameAs links\n", path.c_str(), n);
  return Status::OK();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot write " + path);
  out << content;
  return Status::OK();
}

int Generate(const std::map<std::string, std::string>& flags) {
  const std::string preset =
      flags.count("preset") ? flags.at("preset") : "movies";
  const std::string out_dir = flags.count("out") ? flags.at("out") : ".";
  const uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 7;
  const double scale =
      flags.count("scale") ? std::stod(flags.at("scale")) : 0.25;

  WorldSpec spec;
  if (preset == "tiny") {
    spec = TinyWorldSpec(seed);
  } else if (preset == "movies") {
    spec = MoviesWorldSpec(seed);
  } else if (preset == "music") {
    spec = MusicWorldSpec(seed);
  } else if (preset == "nolinks") {
    spec = NoLinksWorldSpec(seed);
  } else if (preset == "yago-dbpedia") {
    spec = YagoDbpediaSpec(seed, scale);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  if (flags.count("inverses")) spec.add_inverse_relations = true;

  auto world_or = GenerateWorld(spec);
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  SynthWorld world = std::move(world_or).value();
  std::printf("%s\n", DescribeWorld(world).c_str());

  auto kb1 = WriteNTriplesString(world.kb1->store(), world.kb1->dict());
  auto kb2 = WriteNTriplesString(world.kb2->store(), world.kb2->dict());
  if (!kb1.ok() || !kb2.ok()) return 1;

  // Serialize links as owl:sameAs N-Triples. SameAsIndex does not
  // enumerate pairs, so walk kb1's resource IRIs and emit each one's
  // translation.
  std::string links_doc;
  {
    const std::string same_as = std::string(ns::kOwlSameAs);
    CrossKbTranslator to_kb2(&world.links, world.kb2->base_iri());
    const Dictionary& dict = world.kb1->dict();
    for (TermId id = dict.min_id(); id <= dict.max_id(); ++id) {
      const Term& term = dict.Decode(id);
      if (!term.is_iri() ||
          !StartsWith(term.lexical(), world.kb1->base_iri() + "resource/")) {
        continue;
      }
      auto partner = to_kb2.Translate(term);
      if (!partner.ok()) continue;
      // Shared-namespace worlds (nolinks) "translate" unlinked terms to
      // themselves — not a link, don't emit a self sameAs.
      if (*partner == term) continue;
      links_doc += term.ToNTriples() + " <" + same_as + "> " +
                   partner->ToNTriples() + " .\n";
    }
  }

  // Ground truth as TSV: body, head, kind.
  std::string truth_doc = "#body\thead\tkind\n";
  for (const std::string& body : world.truth.RelationsOf(world.kb1->name())) {
    for (const std::string& head :
         world.truth.RelationsOf(world.kb2->name())) {
      const AlignKind kind = world.truth.Classify(body, head);
      if (kind == AlignKind::kNone) continue;
      truth_doc += body + "\t" + head + "\t" + AlignKindName(kind) + "\n";
    }
  }

  for (const auto& [name, content] :
       std::initializer_list<std::pair<const char*, const std::string*>>{
           {"kb1.nt", &*kb1},
           {"kb2.nt", &*kb2},
           {"links.nt", &links_doc},
           {"truth.tsv", &truth_doc}}) {
    const std::string path = out_dir + "/" + name;
    Status st = WriteFile(path, *content);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

/// Guesses a dataset's base IRI as the longest common prefix of its
/// resource IRIs (up to the last '/').
std::string GuessBaseIri(const KnowledgeBase& kb) {
  const Dictionary& dict = kb.dict();
  std::string prefix;
  for (TermId id = dict.min_id(); id <= dict.max_id(); ++id) {
    const Term& term = dict.Decode(id);
    if (!term.is_iri()) continue;
    const std::string& iri = term.lexical();
    if (prefix.empty()) {
      prefix = iri;
      continue;
    }
    size_t i = 0;
    while (i < prefix.size() && i < iri.size() && prefix[i] == iri[i]) ++i;
    prefix.resize(i);
  }
  const size_t slash = prefix.rfind('/');
  if (slash != std::string::npos) prefix.resize(slash + 1);
  return prefix;
}

/// True when a dataset spec names a remote SPARQL endpoint, not a file.
bool IsEndpointUrl(const std::string& spec) {
  return StartsWith(spec, "http://") || StartsWith(spec, "https://");
}

/// Builds one dataset's base endpoint: an HttpSparqlEndpoint for URLs, a
/// LocalEndpoint over a freshly loaded KB for files. `kb_storage` owns the
/// loaded KB in the file case and must outlive the returned endpoint.
StatusOr<std::unique_ptr<Endpoint>> MakeBaseEndpoint(
    const std::string& spec, const std::string& name,
    const std::string& base_iri, std::unique_ptr<KnowledgeBase>* kb_storage) {
  if (IsEndpointUrl(spec)) {
    if (base_iri.empty()) {
      // An empty base IRI would make sameAs translation match *every*
      // group member (prefix filter on "" never filters) and silently
      // corrupt verdicts; a local file guesses its base, a remote endpoint
      // cannot.
      return Status::InvalidArgument(
          name + " is a remote endpoint; pass its entity namespace via --" +
          (name == "kb1" ? std::string("base1") : std::string("base2")) +
          " (e.g. http://dbpedia.org/)");
    }
    HttpSparqlEndpointOptions options;
    options.name = name;
    options.base_iri = base_iri;
    SOFYA_ASSIGN_OR_RETURN(std::unique_ptr<HttpSparqlEndpoint> endpoint,
                           HttpSparqlEndpoint::Create(spec, options));
    std::fprintf(stderr, "%s: remote endpoint %s\n", name.c_str(),
                 spec.c_str());
    return std::unique_ptr<Endpoint>(std::move(endpoint));
  }
  auto loaded = std::make_unique<KnowledgeBase>(name, "");
  SOFYA_RETURN_IF_ERROR(LoadKb(spec, loaded.get()));
  const std::string guessed =
      base_iri.empty() ? GuessBaseIri(*loaded) : base_iri;
  *kb_storage = std::make_unique<KnowledgeBase>(name, guessed);
  (*kb_storage)->dict() = std::move(loaded->dict());
  (*kb_storage)->store() = std::move(loaded->store());
  std::fprintf(stderr, "%s: base IRI %s\n", name.c_str(), guessed.c_str());
  return std::unique_ptr<Endpoint>(
      std::make_unique<LocalEndpoint>(kb_storage->get()));
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

/// Alignment run mode: plain, or with the cassette record/replay harness.
enum class RunMode { kAlign, kRecord, kReplay };

/// Shared runner behind `align`, `record`, and `replay`: builds the base
/// endpoints for the mode (live, recording-wrapped, or cassette-replaying),
/// aligns, prints verdicts + cost, and handles the cassette/manifest
/// artifacts afterwards.
int RunAlignment(const std::map<std::string, std::string>& flags,
                 RunMode mode) {
  const bool record = mode == RunMode::kRecord;
  const bool replay = mode == RunMode::kReplay;
  const bool lenient = replay && flags.count("lenient");
  const bool needs_kbs = !replay || lenient;
  if (!flags.count("links") || !flags.count("relation")) return Usage();
  if ((record || replay) && !flags.count("cassette-dir")) {
    std::fprintf(stderr, "%s requires --cassette-dir DIR\n",
                 record ? "record" : "replay");
    return 2;
  }
  if (needs_kbs && (!flags.count("kb1") || !flags.count("kb2"))) {
    if (lenient) {
      std::fprintf(stderr,
                   "--lenient replay needs --kb1/--kb2 fallback datasets\n");
      return 2;
    }
    return Usage();
  }

  SameAsIndex links;
  if (Status st = LoadLinks(flags.at("links"), &links); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const std::string cassette_dir =
      (record || replay) ? flags.at("cassette-dir") : "";
  const std::string cass1_path = cassette_dir + "/kb1.cass";
  const std::string cass2_path = cassette_dir + "/kb2.cass";

  // Everything below must outlive the Sofya facade (declared before it).
  std::unique_ptr<KnowledgeBase> kb1_storage;
  std::unique_ptr<KnowledgeBase> kb2_storage;
  std::unique_ptr<Endpoint> live1;  // Live base (align/record/lenient).
  std::unique_ptr<Endpoint> live2;

  if (needs_kbs) {
    const std::string base1 = flags.count("base1") ? flags.at("base1") : "";
    const std::string base2 = flags.count("base2") ? flags.at("base2") : "";
    auto ep1 = MakeBaseEndpoint(flags.at("kb1"), "kb1", base1, &kb1_storage);
    auto ep2 = MakeBaseEndpoint(flags.at("kb2"), "kb2", base2, &kb2_storage);
    if (!ep1.ok() || !ep2.ok()) {
      const Status& bad = !ep1.ok() ? ep1.status() : ep2.status();
      std::fprintf(stderr, "%s\n", bad.ToString().c_str());
      return 1;
    }
    live1 = std::move(*ep1);
    live2 = std::move(*ep2);
  }

  // The bases handed to Sofya, plus raw handles kept for the post-run
  // cassette/manifest work (Sofya owns the wrappers).
  std::unique_ptr<Endpoint> kb1_endpoint;
  std::unique_ptr<Endpoint> kb2_endpoint;
  RecordingEndpoint* recorder1 = nullptr;
  RecordingEndpoint* recorder2 = nullptr;
  ReplayEndpoint* replayer1 = nullptr;
  ReplayEndpoint* replayer2 = nullptr;

  if (record) {
    std::error_code ec;
    std::filesystem::create_directories(cassette_dir, ec);
    auto rec1 = std::make_unique<RecordingEndpoint>(live1.get());
    auto rec2 = std::make_unique<RecordingEndpoint>(live2.get());
    recorder1 = rec1.get();
    recorder2 = rec2.get();
    kb1_endpoint = std::move(rec1);
    kb2_endpoint = std::move(rec2);
  } else if (replay) {
    auto rep1 = ReplayEndpoint::Open(cass1_path,
                                     lenient ? live1.get() : nullptr);
    auto rep2 = ReplayEndpoint::Open(cass2_path,
                                     lenient ? live2.get() : nullptr);
    if (!rep1.ok() || !rep2.ok()) {
      const Status& bad = !rep1.ok() ? rep1.status() : rep2.status();
      std::fprintf(stderr, "%s\n", bad.ToString().c_str());
      return 1;
    }
    replayer1 = rep1->get();
    replayer2 = rep2->get();
    kb1_endpoint = std::move(*rep1);
    kb2_endpoint = std::move(*rep2);
    std::fprintf(stderr, "replaying %s (%s mode)\n", cassette_dir.c_str(),
                 lenient ? "lenient" : "strict");
  } else {
    kb1_endpoint = std::move(live1);
    kb2_endpoint = std::move(live2);
  }

  SofyaOptions options;
  if (flags.count("legacy-planner")) options.planner.use_statistics = false;
  if (flags.count("tau")) {
    options.aligner.threshold = std::stod(flags.at("tau"));
  }
  if (flags.count("measure") && flags.at("measure") == "cwa") {
    options.aligner.measure = ConfidenceMeasure::kCwa;
  }
  if (flags.count("no-ubs")) options.aligner.use_ubs = false;
  if (flags.count("sample")) {
    options.aligner.sampler.sample_size = std::stoul(flags.at("sample"));
  }
  if (flags.count("candidate-source")) {
    auto kind = ParseCandidateSourceKind(flags.at("candidate-source"));
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    options.aligner.finder.source = *kind;
  }
  if (flags.count("seed")) {
    ApplyRunSeed(&options.aligner, std::stoull(flags.at("seed")));
  }

  Sofya sofya(std::move(kb1_endpoint), std::move(kb2_endpoint), &links,
              options);
  if (record) sofya.AttachJournals(recorder1, recorder2);
  if (replay) sofya.AttachJournals(replayer1, replayer2);

  // --relation: one IRI, a comma-separated list, or "all" (every predicate
  // of the reference KB).
  std::vector<std::string> relations;
  const std::string& relation_flag = flags.at("relation");
  if (relation_flag == "all") {
    auto discovered = sofya.ReferenceRelations();
    if (!discovered.ok()) {
      std::fprintf(stderr, "relation discovery failed: %s\n",
                   discovered.status().ToString().c_str());
      return 1;
    }
    relations = std::move(*discovered);
  } else {
    for (std::string& iri : Split(relation_flag, ',')) {
      if (!iri.empty()) relations.push_back(std::move(iri));
    }
  }
  if (relations.empty()) {
    std::fprintf(stderr, "no relations to align\n");
    return 2;
  }
  const size_t threads =
      flags.count("threads") ? std::stoul(flags.at("threads")) : 1;
  // Phase-decomposed scheduling is the default; "relation" keeps the
  // one-task-per-relation fan-out (mainly for scheduler comparisons).
  AlignSchedule schedule = AlignSchedule::kPhase;
  if (flags.count("schedule")) {
    const std::string& name = flags.at("schedule");
    if (name == "relation") {
      schedule = AlignSchedule::kRelation;
    } else if (name != "phase") {
      std::fprintf(stderr, "unknown --schedule '%s' (phase|relation)\n",
                   name.c_str());
      return 2;
    }
  }

  WallTimer timer;
  auto results = sofya.AlignAll(relations, threads, schedule);
  if (!results.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < relations.size(); ++i) {
    const AlignmentResult* result = (*results)[i];
    std::printf("alignment of <%s>:\n", relations[i].c_str());
    if (result->verdicts.empty()) {
      std::printf("  (no candidate relations discovered)\n");
    }
    for (const auto& v : result->verdicts) {
      std::printf("  %-60s prior=%.2f pca=%.2f cwa=%.2f supp=%zu %s%s%s\n",
                  v.relation.lexical().c_str(), v.prior, v.rule.pca_conf,
                  v.rule.cwa_conf, v.rule.support,
                  v.accepted ? "[SUBSUMED]" : "[rejected]",
                  v.ubs_subsumption_pruned ? " (UBS pruned)" : "",
                  v.equivalence ? " [EQUIVALENT]" : "");
    }
  }
  const EndpointStats cost = sofya.TotalCost();
  std::printf(
      "cost: %llu queries, %llu rows, %zu relations, %zu threads, "
      "%.0f ms wall\n",
      static_cast<unsigned long long>(cost.queries),
      static_cast<unsigned long long>(cost.rows_returned), relations.size(),
      threads, timer.ElapsedMillis());

  if (record) {
    for (const auto& [recorder, path] :
         {std::pair{recorder1, &cass1_path}, std::pair{recorder2, &cass2_path}}) {
      if (Status st = recorder->Save(*path); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("recorded %s: %zu entries\n", path->c_str(),
                  recorder->num_entries());
      if (recorder->conflicts() > 0) {
        std::fprintf(stderr,
                     "warning: %s: %llu conflicting re-answers (dataset "
                     "changed mid-recording; first answer kept)\n",
                     path->c_str(),
                     static_cast<unsigned long long>(recorder->conflicts()));
      }
    }
    const std::string manifest_path = cassette_dir + "/run.manifest";
    if (Status st = WriteFile(manifest_path,
                              sofya.last_manifest().Serialize());
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("recorded %s\nmanifest root: %s\n", manifest_path.c_str(),
                sofya.last_manifest().root().c_str());
  }

  if (replay) {
    const uint64_t misses =
        replayer1->strict_misses() + replayer2->strict_misses();
    if (misses > 0) {
      // Strict mode: an unrecorded interaction means this run is NOT the
      // recorded session — fail loudly even when the pipeline degraded
      // gracefully (e.g. an unrecorded term lookup yielding no candidates).
      std::fprintf(stderr,
                   "replay: %llu unrecorded interactions (strict mode)\n",
                   static_cast<unsigned long long>(misses));
      return 1;
    }
    if (lenient && flags.count("update")) {
      // Persist the cassettes extended by fall-through appends.
      for (const auto& [replayer, path] :
           {std::pair{replayer1, &cass1_path},
            std::pair{replayer2, &cass2_path}}) {
        if (Status st = replayer->Save(*path); !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
        std::printf("updated %s (+%llu entries)\n", path->c_str(),
                    static_cast<unsigned long long>(replayer->appended()));
      }
    }
    std::printf("manifest root: %s\n", sofya.last_manifest().root().c_str());
    if (flags.count("manifest-out")) {
      if (Status st = WriteFile(flags.at("manifest-out"),
                                sofya.last_manifest().Serialize());
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (flags.count("expect-manifest")) {
      std::string expected_text;
      if (Status st = ReadFileToString(flags.at("expect-manifest"),
                                       &expected_text);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      auto expected = RunManifest::Parse(expected_text);
      if (!expected.ok()) {
        std::fprintf(stderr, "%s\n", expected.status().ToString().c_str());
        return 2;
      }
      if (auto div = FirstDivergence(*expected, sofya.last_manifest())) {
        std::fprintf(stderr,
                     "manifest MISMATCH at entry %zu: %s\n"
                     "expected root %s, got %s\n",
                     div->index, div->what.c_str(),
                     expected->root().c_str(),
                     sofya.last_manifest().root().c_str());
        return 1;
      }
      std::printf("manifest verified against %s\n",
                  flags.at("expect-manifest").c_str());
    }
  }
  return 0;
}

int Align(const std::map<std::string, std::string>& flags) {
  return RunAlignment(flags, RunMode::kAlign);
}

/// `manifest diff A B`: verifies both manifests and pinpoints the first
/// diverging entry. Exit 0 = identical, 1 = diverged, 2 = unreadable.
int ManifestDiff(const std::string& a_path, const std::string& b_path) {
  RunManifest manifests[2];
  const std::string* paths[2] = {&a_path, &b_path};
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (Status st = ReadFileToString(*paths[i], &text); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    auto parsed = RunManifest::Parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", paths[i]->c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    manifests[i] = std::move(*parsed);
  }
  if (auto div = FirstDivergence(manifests[0], manifests[1])) {
    std::printf("manifests diverge at entry %zu: %s\n", div->index,
                div->what.c_str());
    std::printf("roots: %s vs %s\n", manifests[0].root().c_str(),
                manifests[1].root().c_str());
    return 1;
  }
  std::printf("manifests agree: root %s (%zu entries)\n",
              manifests[0].root().c_str(), manifests[0].entries().size());
  return 0;
}

int Query(const std::map<std::string, std::string>& flags) {
  if ((!flags.count("kb") && !flags.count("endpoint-url")) ||
      !flags.count("sparql")) {
    return Usage();
  }

  // Build the target endpoint: local file or remote SPARQL service. The
  // remote path is wrapped in RetryingEndpoint so one 503 does not kill a
  // one-shot query (backoff per retry_policy.h defaults).
  KnowledgeBase kb("kb", "");
  std::unique_ptr<ThreadPool> scan_pool;  // Must outlive the endpoint.
  std::unique_ptr<LocalEndpoint> local;
  std::unique_ptr<HttpSparqlEndpoint> remote;
  std::unique_ptr<RetryingEndpoint> retrying;
  Endpoint* endpoint = nullptr;
  if (flags.count("endpoint-url")) {
    HttpSparqlEndpointOptions options;
    options.name = "remote";
    auto created = HttpSparqlEndpoint::Create(flags.at("endpoint-url"),
                                              options);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    remote = std::move(*created);
    retrying = std::make_unique<RetryingEndpoint>(remote.get());
    endpoint = retrying.get();
  } else {
    Status st = LoadKb(flags.at("kb"), &kb);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    LocalEndpointOptions local_options;
    if (flags.count("legacy-planner")) {
      local_options.engine.planner.use_statistics = false;
    }
    if (flags.count("greedy-planner")) {
      local_options.engine.planner.use_dp = false;
    }
    if (flags.count("adaptive")) local_options.engine.adaptive = true;
    if (flags.count("scan-threads")) {
      const size_t n = std::stoul(flags.at("scan-threads"));
      if (n > 1) {
        scan_pool = std::make_unique<ThreadPool>(n);
        local_options.engine.scan_pool = scan_pool.get();
      }
    }
    local = std::make_unique<LocalEndpoint>(&kb, local_options);
    endpoint = local.get();
  }

  const PrefixMap prefixes = PrefixMap::WithDefaults();
  auto rows = SelectText(endpoint, flags.at("sparql"), &prefixes);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  // Header.
  std::string header;
  for (const auto& name : rows->var_names) header += "?" + name + "\t";
  std::printf("%s\n", header.c_str());
  for (const auto& row : rows->rows) {
    std::string line;
    for (TermId id : row) {
      if (id == kNullTermId) {
        line += "\t";  // Unbound cell (remote results may have them).
        continue;
      }
      auto term = endpoint->DecodeTerm(id);
      line += (term.ok() ? term->ToNTriples() : "?") + "\t";
    }
    std::printf("%s\n", line.c_str());
  }
  std::fprintf(stderr, "%zu rows\n", rows->rows.size());
  return 0;
}

int Explain(const std::map<std::string, std::string>& flags) {
  if (!flags.count("kb") || !flags.count("sparql")) return Usage();

  KnowledgeBase kb("kb", "");
  if (Status st = LoadKb(flags.at("kb"), &kb); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  LocalEndpointOptions options;
  if (flags.count("legacy-planner")) {
    options.engine.planner.use_statistics = false;
  }
  if (flags.count("greedy-planner")) options.engine.planner.use_dp = false;
  if (flags.count("adaptive")) options.engine.adaptive = true;
  LocalEndpoint endpoint(&kb, options);

  const PrefixMap prefixes = PrefixMap::WithDefaults();
  TermInterner intern = [&endpoint](const Term& t) {
    return endpoint.EncodeTerm(t);
  };
  auto query = ParseSelectQuery(flags.at("sparql"), intern, &prefixes);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  auto explain = endpoint.Explain(*query);
  if (!explain.ok()) {
    std::fprintf(stderr, "%s\n", explain.status().ToString().c_str());
    return 1;
  }

  EvalStats eval_stats;
  size_t executed_rows = 0;
  if (flags.count("execute")) {
    // Run through the engine directly so the per-stage actual row counts
    // (EvalStats::clause_rows) come back with the result; merge them into
    // the explain table by source clause index. Under --adaptive a re-plan
    // may have reordered execution — actuals still attach to the right
    // source clauses, and the re-plan count is surfaced.
    auto result = endpoint.engine().Select(*query, &eval_stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    executed_rows = result->rows.size();
    explain->replans = eval_stats.replans;
    // EvalStats::clause_rows describes the finally-executed plan. When an
    // adaptive re-plan changed the order, showing actuals against the
    // static order would pair each stage with the wrong estimates — so the
    // listing is rebuilt in executed order, estimates included.
    std::vector<ClauseExplain> executed;
    executed.reserve(eval_stats.clause_rows.size());
    for (const ClauseRowStats& cr : eval_stats.clause_rows) {
      for (auto& ce : explain->clauses) {
        if (ce.source_index == cr.source_index) {
          ce.estimated_rows = cr.estimated_rows;
          ce.estimated_output_rows = cr.estimated_output_rows;
          ce.actual_rows = static_cast<int64_t>(cr.actual_rows);
          executed.push_back(ce);
          break;
        }
      }
    }
    if (executed.size() == explain->clauses.size()) {
      explain->clauses = std::move(executed);
    }
  }

  if (flags.count("json")) {
    std::printf("%s\n", explain->ToJson().c_str());
  } else {
    std::printf("%s", explain->ToString().c_str());
  }
  if (flags.count("execute") && !flags.count("json")) {
    std::printf(
        "executed: %zu rows, %llu index probes, %llu triples scanned, "
        "%llu replans\n",
        executed_rows, static_cast<unsigned long long>(eval_stats.index_probes),
        static_cast<unsigned long long>(eval_stats.triples_scanned),
        static_cast<unsigned long long>(eval_stats.replans));
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

int Serve(const std::map<std::string, std::string>& flags) {
  if (!flags.count("kb")) return Usage();
  KnowledgeBase kb("kb", "");
  if (Status st = LoadKb(flags.at("kb"), &kb); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  SparqlServerOptions server_options;
  if (flags.count("path")) server_options.service_path = flags.at("path");
  if (flags.count("scan-threads")) {
    server_options.scan_threads = std::stoul(flags.at("scan-threads"));
  }
  if (flags.count("max-concurrent")) {
    server_options.max_concurrent = std::stoul(flags.at("max-concurrent"));
  }
  if (flags.count("per-client-concurrent")) {
    server_options.max_concurrent_per_client =
        std::stoul(flags.at("per-client-concurrent"));
  }
  if (flags.count("quota")) {
    server_options.per_client_query_quota = std::stoull(flags.at("quota"));
  }
  if (flags.count("retry-after-s")) {
    server_options.retry_after_seconds = std::stod(flags.at("retry-after-s"));
  }
  if (flags.count("legacy-planner")) {
    server_options.local.engine.planner.use_statistics = false;
  }
  SparqlServer server(&kb, server_options);

  HttpServerOptions http_options;
  if (flags.count("port")) {
    http_options.port = static_cast<uint16_t>(std::stoul(flags.at("port")));
  }
  if (flags.count("address")) http_options.bind_address = flags.at("address");
  if (flags.count("workers")) {
    http_options.worker_threads = std::stoul(flags.at("workers"));
  }
  HttpServer http(server.HttpHandler(), http_options);
  if (Status st = http.Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving %s at http://%s:%u%s\n", flags.at("kb").c_str(),
              http_options.bind_address.c_str(),
              static_cast<unsigned>(http.port()),
              server_options.service_path.c_str());
  std::fflush(stdout);
  if (flags.count("port-file")) {
    // Scripts (the CI smoke) poll this file to learn the ephemeral port.
    if (Status st = WriteFile(flags.at("port-file"),
                              std::to_string(http.port()) + "\n");
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      http.Stop();
      return 1;
    }
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(
      stderr,
      "shutting down: %llu connections, %llu requests, %llu queries "
      "answered, %llu shed (503), %llu shed (429)\n",
      static_cast<unsigned long long>(http.connections_accepted()),
      static_cast<unsigned long long>(server.requests_received()),
      static_cast<unsigned long long>(server.queries_answered()),
      static_cast<unsigned long long>(server.shed_concurrency()),
      static_cast<unsigned long long>(server.shed_quota()));
  http.Stop();
  return 0;
}

int Snapshot(const std::string& action,
             const std::map<std::string, std::string>& flags) {
  if (!flags.count("kb")) return Usage();
  if (action == "save") {
    if (!flags.count("out")) return Usage();
    KnowledgeBase kb("kb", "");
    if (Status st = LoadKb(flags.at("kb"), &kb); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    WallTimer timer;
    auto report = kb.SaveSnapshot(flags.at("out"));
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "wrote %s: %zu triples, %zu terms, %zu shards (%zu promoted "
        "groups), %llu bytes, %.0f ms\n",
        flags.at("out").c_str(), report->triples, report->terms,
        report->shards, report->groups,
        static_cast<unsigned long long>(report->bytes),
        timer.ElapsedMillis());
    return 0;
  }
  if (action == "load") {
    KnowledgeBase kb("kb", "");
    WallTimer timer;
    auto report = kb.LoadSnapshot(flags.at("kb"));
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    const StoreStats stats = kb.store().GlobalStats();
    std::printf(
        "loaded %s: %zu triples, %zu terms, %zu shards (%zu promoted "
        "groups), %.0f ms\n"
        "distinct: %llu subjects, %llu predicates, %llu objects\n",
        flags.at("kb").c_str(), report->triples, report->terms,
        report->shards, report->groups, timer.ElapsedMillis(),
        static_cast<unsigned long long>(stats.distinct_subjects),
        static_cast<unsigned long long>(stats.distinct_predicates),
        static_cast<unsigned long long>(stats.distinct_objects));
    return 0;
  }
  std::fprintf(stderr, "unknown snapshot action '%s' (save|load)\n",
               action.c_str());
  return 2;
}

}  // namespace
}  // namespace sofya

int main(int argc, char** argv) {
  if (argc < 2) return sofya::Usage();
  const std::string command = argv[1];
  if (command == "snapshot") {
    if (argc < 3) return sofya::Usage();
    return sofya::Snapshot(argv[2], sofya::ParseFlags(argc, argv, 3));
  }
  if (command == "manifest") {
    if (argc < 5 || std::string(argv[2]) != "diff") return sofya::Usage();
    return sofya::ManifestDiff(argv[3], argv[4]);
  }
  const auto flags = sofya::ParseFlags(argc, argv, 2);
  if (command == "generate") return sofya::Generate(flags);
  if (command == "align") return sofya::Align(flags);
  if (command == "record") {
    return sofya::RunAlignment(flags, sofya::RunMode::kRecord);
  }
  if (command == "replay") {
    return sofya::RunAlignment(flags, sofya::RunMode::kReplay);
  }
  if (command == "query") return sofya::Query(flags);
  if (command == "serve") return sofya::Serve(flags);
  if (command == "explain") return sofya::Explain(flags);
  return sofya::Usage();
}
